package metrics

import (
	"fmt"
	"testing"
)

// benchRegistry builds a registry shaped like a live fleet server: a few
// dozen counters/gauges plus node-labeled histograms.
func benchRegistry() *Registry {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.Counter(fmt.Sprintf("ecofl_bench_c%d_total", i), "").Add(int64(i))
		r.Gauge(fmt.Sprintf("ecofl_bench_g%d", i), "").Set(float64(i))
	}
	for i := 0; i < 8; i++ {
		h := r.Histogram("ecofl_bench_seconds", "", DefBuckets, "node", fmt.Sprint(i))
		for j := 0; j < 64; j++ {
			h.Observe(float64(j) * 1e-3)
		}
	}
	return r
}

// BenchmarkSeriesAppend is the sampler's hot write: one ring-buffer slot
// store under a mutex, allocation-free at steady state.
func BenchmarkSeriesAppend(b *testing.B) {
	s := NewSeries(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Append(float64(i), float64(i))
	}
}

// BenchmarkSamplerSample measures one full sampling pass over the fleet-shaped
// registry — the per-interval cost a live server pays (default every 1s).
func BenchmarkSamplerSample(b *testing.B) {
	r := benchRegistry()
	sp := NewSampler(512, r)
	sp.SetClock(func() float64 { return 0 })
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.Sample()
	}
}

// BenchmarkHistogramQuantile is the straggler detector's read path.
func BenchmarkHistogramQuantile(b *testing.B) {
	r := benchRegistry()
	h := r.Histogram("ecofl_bench_seconds", "", DefBuckets, "node", "0")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}
