package metrics

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSeriesRingBuffer(t *testing.T) {
	s := NewSeries(3)
	if _, _, ok := s.Last(); ok {
		t.Fatal("empty series reported a last sample")
	}
	s.Append(1, 10)
	s.Append(2, 20)
	ts, vs := s.Points()
	if len(ts) != 2 || ts[0] != 1 || vs[1] != 20 {
		t.Fatalf("points = %v %v", ts, vs)
	}
	// Overflow evicts oldest-first; order stays chronological.
	s.Append(3, 30)
	s.Append(4, 40)
	s.Append(5, 50)
	ts, vs = s.Points()
	if len(ts) != 3 {
		t.Fatalf("len = %d, want capacity 3", len(ts))
	}
	for i, want := range []float64{3, 4, 5} {
		if ts[i] != want || vs[i] != want*10 {
			t.Fatalf("after wrap: points = %v %v", ts, vs)
		}
	}
	if lt, lv, ok := s.Last(); !ok || lt != 5 || lv != 50 {
		t.Fatalf("Last = %v %v %v", lt, lv, ok)
	}
	if s.Len() != 3 || s.Capacity() != 3 {
		t.Fatalf("Len/Capacity = %d/%d", s.Len(), s.Capacity())
	}
}

func TestSamplerRecordsHistory(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ecofl_s_total", "")
	g := r.Gauge("ecofl_s_gauge", "")
	h := r.Histogram("ecofl_s_seconds", "", []float64{1, 10})

	sp := NewSampler(8, r)
	now := 0.0
	sp.SetClock(func() float64 { now += 1; return now })

	c.Add(2)
	g.Set(0.5)
	h.Observe(0.5)
	sp.Sample()
	c.Add(3)
	g.Set(0.75)
	sp.Sample()

	ts, vs := sp.Series("ecofl_s_total").Points()
	if len(ts) != 2 || vs[0] != 2 || vs[1] != 5 || ts[0] != 1 || ts[1] != 2 {
		t.Fatalf("counter history = %v %v", ts, vs)
	}
	if _, vs := sp.Series("ecofl_s_gauge").Points(); vs[1] != 0.75 {
		t.Fatalf("gauge history = %v", vs)
	}
	// Histograms expand to count/sum/p50/p99 series.
	for _, suffix := range []string{":count", ":sum", ":p50", ":p99"} {
		if sp.Series("ecofl_s_seconds"+suffix) == nil {
			t.Fatalf("missing histogram series %q; names: %v", suffix, sp.Names())
		}
	}
	if _, vs := sp.Series("ecofl_s_seconds:count").Points(); vs[0] != 1 {
		t.Fatalf("histogram count series = %v", vs)
	}
	if _, vs := sp.Series("ecofl_s_seconds:p50").Points(); vs[0] != 0.5 {
		t.Fatalf("histogram p50 series = %v", vs)
	}
	// Metrics registered after the sampler started are picked up.
	r.Gauge("ecofl_s_late", "").Set(9)
	sp.Sample()
	if s := sp.Series("ecofl_s_late"); s == nil || s.Len() != 1 {
		t.Fatal("late-registered gauge not sampled")
	}
}

func TestSamplerWriteJSONSkipsNaN(t *testing.T) {
	r := NewRegistry()
	r.Gauge("ecofl_j_gauge", "").Set(1.5)
	r.Histogram("ecofl_j_empty_seconds", "", []float64{1}) // p50 of empty = NaN
	sp := NewSampler(4, r)
	sp.SetClock(func() float64 { return 1 })
	sp.Sample()

	var b strings.Builder
	if err := sp.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Series []struct {
			Name   string       `json:"name"`
			Points [][2]float64 `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	byName := map[string]int{}
	for _, s := range out.Series {
		byName[s.Name] = len(s.Points)
	}
	if byName["ecofl_j_gauge"] != 1 {
		t.Fatalf("gauge series points = %d, want 1 (%s)", byName["ecofl_j_gauge"], b.String())
	}
	if n, ok := byName["ecofl_j_empty_seconds:p50"]; !ok || n != 0 {
		t.Fatalf("NaN quantile points must be skipped, got %d present=%v", n, ok)
	}
}

func TestSeriesAndDashHandlers(t *testing.T) {
	r := NewRegistry()
	r.Gauge("ecofl_dash_gauge", "").Set(2)
	sp := NewSampler(4, r)
	sp.Sample()

	api := httptest.NewServer(sp.SeriesHandler())
	defer api.Close()
	resp, err := api.Client().Get(api.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("series endpoint returned invalid JSON: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), "ecofl_dash_gauge") {
		t.Fatalf("series payload missing metric:\n%s", body)
	}

	dash := httptest.NewServer(DashHandler())
	defer dash.Close()
	dresp, err := dash.Client().Get(dash.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	page, _ := io.ReadAll(dresp.Body)
	html := string(page)
	if ct := dresp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("dash content type %q", ct)
	}
	for _, want := range []string{"<!doctype html", "Eco-FL fleet dashboard", "api/series", "ecofl_straggler"} {
		if !strings.Contains(html, want) {
			t.Fatalf("dashboard page missing %q", want)
		}
	}
}
