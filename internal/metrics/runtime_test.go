package metrics

import (
	"math"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeSamplerGauges(t *testing.T) {
	reg := NewRegistry()
	rs := NewRuntimeSampler(reg)

	g, ok := reg.Get("ecofl_runtime_goroutines")
	if !ok {
		t.Fatal("goroutine gauge not registered")
	}
	if g.Value < 1 {
		t.Fatalf("goroutine gauge = %v, want >= 1", g.Value)
	}
	h, _ := reg.Get("ecofl_runtime_heap_bytes")
	if h.Value <= 0 {
		t.Fatalf("heap gauge = %v, want > 0", h.Value)
	}

	// The high-water mark must ratchet: park goroutines, sample, release.
	release := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() { <-release }()
	}
	rs.Sample()
	close(release)
	hwmAt := rs.GoroutineHWM()
	if hwmAt < g.Value {
		t.Fatalf("HWM %v below earlier live count %v", hwmAt, g.Value)
	}
	rs.Sample()
	if rs.GoroutineHWM() < hwmAt {
		t.Fatalf("HWM went down: %v -> %v", hwmAt, rs.GoroutineHWM())
	}
	if rs.PeakHeapBytes() <= 0 {
		t.Fatalf("peak heap = %v, want > 0", rs.PeakHeapBytes())
	}
}

func TestRuntimeSamplerGCPause(t *testing.T) {
	reg := NewRegistry()
	rs := NewRuntimeSampler(reg)
	runtime.GC()
	rs.Sample()
	p, _ := reg.Get("ecofl_runtime_gc_pauses_total")
	if p.Value < 1 {
		t.Fatalf("GC pauses gauge = %v after forced GC, want >= 1", p.Value)
	}
	p99 := rs.GCPauseP99()
	if math.IsNaN(p99) || p99 < 0 {
		t.Fatalf("GC pause p99 = %v, want a non-negative number", p99)
	}
}

func TestRuntimeSamplerOnPrometheusExport(t *testing.T) {
	reg := NewRegistry()
	NewRuntimeSampler(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"ecofl_runtime_goroutines", "ecofl_runtime_goroutines_hwm",
		"ecofl_runtime_heap_bytes", "ecofl_runtime_heap_bytes_peak",
		"ecofl_runtime_gc_pause_p99_seconds",
	} {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("/metrics export missing %s", name)
		}
	}
}

func TestRuntimeSamplerStartStop(t *testing.T) {
	reg := NewRegistry()
	rs := NewRuntimeSampler(reg)
	stop := rs.Start(5 * time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	stop()
	stop() // idempotent
	if rs.GoroutineHWM() < 1 {
		t.Fatal("background sampling never ran")
	}
}

// TestRuntimeSamplerOverhead is the overhead guard: one Sample() must stay
// far below a dashboard sampling period, so attaching the sampler to a run
// can never perturb what it measures. runtime/metrics.Read is a few
// microseconds; the 200µs/op budget leaves room for slow CI machines while
// still catching an accidental O(heap) or allocating implementation.
func TestRuntimeSamplerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard")
	}
	reg := NewRegistry()
	rs := NewRuntimeSampler(reg)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rs.Sample()
		}
	})
	if ns := res.NsPerOp(); ns > 200_000 {
		t.Fatalf("RuntimeSampler.Sample costs %d ns/op, budget 200µs", ns)
	}
	if allocs := res.AllocsPerOp(); allocs > 8 {
		t.Fatalf("RuntimeSampler.Sample allocates %d objects/op, want <= 8", allocs)
	}
}
