// Package metrics is a stdlib-only runtime metrics substrate: a
// concurrency-safe registry of counters, gauges, and fixed-bucket histograms
// with cheap hot-path updates (one atomic op for a counter increment), a
// snapshot API for tests and end-of-run dumps, and a Prometheus text-format
// exposition writer so a live server can be scraped by standard tooling.
//
// Metric handles are obtained once (typically into a package-level var or a
// struct field) and then updated lock-free; the registry lock is only taken
// at registration and snapshot time, never on the hot path.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates the metric types in snapshots.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Counter is a monotonically non-decreasing integer. Durations are counted in
// integer nanoseconds (name them *_nanoseconds_total) so the hot path stays a
// single atomic add — no float CAS loop.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (set-dominated; Add uses a CAS
// loop and is intended for low-rate adjustments).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets (plus an
// implicit +Inf bucket) and tracks the running sum, matching the Prometheus
// histogram model. Observe is lock-free.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (≤ ~20); a linear scan beats binary search at this size
	// and keeps the code allocation-free.
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation inside the bucket containing the target rank — the
// same estimator as PromQL's histogram_quantile. The lower edge of the first
// bucket is taken as 0 (the usual case for latency histograms); observations
// landing in the +Inf bucket clamp the estimate to the highest finite bound.
// It returns NaN when the histogram is empty or q is outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	buckets := make([]BucketSample, 0, len(h.bounds)+1)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		buckets = append(buckets, BucketSample{UpperBound: b, Cumulative: cum})
	}
	cum += h.inf.Load()
	buckets = append(buckets, BucketSample{UpperBound: math.Inf(1), Cumulative: cum})
	return QuantileFromBuckets(buckets, q)
}

// Bounds returns the histogram's (non-+Inf) upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// DefBuckets is a general-purpose latency bucket layout in seconds, spanning
// 100 µs to ~10 s.
var DefBuckets = []float64{1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// ExpBuckets returns n exponentially growing upper bounds starting at start
// and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric is one registered instrument.
type metric struct {
	family string   // name without labels
	labels []string // alternating k, v — sorted by key, pre-validated
	kind   Kind
	help   string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// fullName renders family{k="v",...} with an optional extra label appended
// (used for the histogram "le" label).
func (m *metric) fullName(extraK, extraV string) string {
	if len(m.labels) == 0 && extraK == "" {
		return m.family
	}
	var b strings.Builder
	b.WriteString(m.family)
	b.WriteByte('{')
	for i := 0; i+1 < len(m.labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", m.labels[i], escapeLabelValue(m.labels[i+1]))
	}
	if extraK != "" {
		if len(m.labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", extraK, escapeLabelValue(extraV))
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. A package-level Default registry serves the common case.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // keyed by fullName("","")
	order   []string           // registration order of keys
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Default is the process-wide registry used by the package-level helpers and
// by instrumented subsystems that are not handed an explicit registry.
var Default = NewRegistry()

// labelPairs validates and normalizes alternating key/value label arguments.
func labelPairs(name string, kv []string) []string {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s: odd label list %v", name, kv))
	}
	if len(kv) == 0 {
		return nil
	}
	out := append([]string(nil), kv...)
	// Sort pairs by key so the same label set always yields the same key.
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(out)/2)
	for i := 0; i+1 < len(out); i += 2 {
		if out[i] == "" || strings.ContainsAny(out[i], `{}",=`) {
			panic(fmt.Sprintf("metrics: %s: bad label name %q", name, out[i]))
		}
		pairs = append(pairs, pair{out[i], out[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	out = out[:0]
	for _, p := range pairs {
		out = append(out, p.k, p.v)
	}
	return out
}

// lookup returns the metric registered under (name, labels), creating it with
// mk when absent. It panics if the name is reused with a different kind —
// that is always an instrumentation bug worth failing loudly on.
func (r *Registry) lookup(name, help string, kind Kind, kv []string, mk func(m *metric)) *metric {
	labels := labelPairs(name, kv)
	probe := &metric{family: name, labels: labels}
	key := probe.fullName("", "")
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %v, requested as %v", key, m.kind, kind))
		}
		return m
	}
	probe.kind = kind
	probe.help = help
	mk(probe)
	r.metrics[key] = probe
	r.order = append(r.order, key)
	return probe
}

// Counter returns the counter registered under name and optional label
// pairs, creating it on first use.
func (r *Registry) Counter(name, help string, labelKV ...string) *Counter {
	m := r.lookup(name, help, KindCounter, labelKV, func(m *metric) { m.counter = &Counter{} })
	return m.counter
}

// Gauge returns the gauge registered under name and optional label pairs.
func (r *Registry) Gauge(name, help string, labelKV ...string) *Gauge {
	m := r.lookup(name, help, KindGauge, labelKV, func(m *metric) { m.gauge = &Gauge{} })
	return m.gauge
}

// Histogram returns the histogram registered under name with the given
// bucket upper bounds (sorted internally; +Inf is implicit). Buckets are
// fixed at first registration; later calls with the same name return the
// existing histogram regardless of the bounds argument.
func (r *Registry) Histogram(name, help string, bounds []float64, labelKV ...string) *Histogram {
	m := r.lookup(name, help, KindHistogram, labelKV, func(m *metric) {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs))}
		m.hist = h
	})
	return m.hist
}

// Counter, Gauge and Histogram on the Default registry.
func GetCounter(name, help string, labelKV ...string) *Counter {
	return Default.Counter(name, help, labelKV...)
}
func GetGauge(name, help string, labelKV ...string) *Gauge {
	return Default.Gauge(name, help, labelKV...)
}
func GetHistogram(name, help string, bounds []float64, labelKV ...string) *Histogram {
	return Default.Histogram(name, help, bounds, labelKV...)
}

// BucketSample is one cumulative histogram bucket in a snapshot.
type BucketSample struct {
	UpperBound float64 // math.Inf(1) for the +Inf bucket
	Cumulative int64
}

// Sample is one metric's state at snapshot time.
type Sample struct {
	Name   string // full name including labels
	Family string
	// Labels are the alternating k, v pairs in canonical (key-sorted) order —
	// what telemetry federation needs to re-register a node-labeled view
	// without parsing the rendered Name.
	Labels []string
	Kind   Kind
	Help   string
	// Value carries the counter or gauge value (counters as float64 for
	// uniformity; use Count/Sum/Buckets for histograms).
	Value   float64
	Count   int64
	Sum     float64
	Buckets []BucketSample
}

// Snapshot returns every metric's current state, sorted by full name. It is
// safe to call concurrently with hot-path updates; each metric is read
// atomically (histograms bucket-by-bucket).
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	ms := make([]*metric, len(keys))
	for i, k := range keys {
		ms[i] = r.metrics[k]
	}
	r.mu.Unlock()

	out := make([]Sample, 0, len(ms))
	for i, m := range ms {
		s := Sample{Name: keys[i], Family: m.family, Kind: m.kind, Help: m.help,
			Labels: append([]string(nil), m.labels...)}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.counter.Value())
		case KindGauge:
			s.Value = m.gauge.Value()
		case KindHistogram:
			h := m.hist
			var cum int64
			for bi, b := range h.bounds {
				cum += h.counts[bi].Load()
				s.Buckets = append(s.Buckets, BucketSample{UpperBound: b, Cumulative: cum})
			}
			cum += h.inf.Load()
			s.Buckets = append(s.Buckets, BucketSample{UpperBound: math.Inf(1), Cumulative: cum})
			s.Count = cum
			s.Sum = h.Sum()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the sample for a full metric name (including labels), or false.
func (r *Registry) Get(name string) (Sample, bool) {
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s, true
		}
	}
	return Sample{}, false
}
