package metrics

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"time"
)

// Series is a fixed-capacity ring buffer of (time, value) samples — the
// history behind the live dashboard's sparklines. Appends past capacity
// overwrite the oldest point, so memory stays bounded no matter how long a
// server runs.
type Series struct {
	mu   sync.Mutex
	ts   []float64
	vs   []float64
	head int // index of the oldest sample when full
	n    int
}

// NewSeries returns an empty series holding at most capacity points.
func NewSeries(capacity int) *Series {
	if capacity < 1 {
		panic("metrics: NewSeries wants capacity >= 1")
	}
	return &Series{ts: make([]float64, capacity), vs: make([]float64, capacity)}
}

// Append records one sample, evicting the oldest when full.
func (s *Series) Append(t, v float64) {
	s.mu.Lock()
	if s.n < len(s.ts) {
		i := (s.head + s.n) % len(s.ts)
		s.ts[i], s.vs[i] = t, v
		s.n++
	} else {
		s.ts[s.head], s.vs[s.head] = t, v
		s.head = (s.head + 1) % len(s.ts)
	}
	s.mu.Unlock()
}

// Len returns the number of stored samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Capacity returns the ring size.
func (s *Series) Capacity() int { return len(s.ts) }

// Points returns the stored samples oldest-first.
func (s *Series) Points() (ts, vs []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts = make([]float64, s.n)
	vs = make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		j := (s.head + i) % len(s.ts)
		ts[i], vs[i] = s.ts[j], s.vs[j]
	}
	return ts, vs
}

// Last returns the most recent sample.
func (s *Series) Last() (t, v float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return 0, 0, false
	}
	j := (s.head + s.n - 1) % len(s.ts)
	return s.ts[j], s.vs[j], true
}

// Sampler turns point-in-time registry snapshots into bounded history: each
// Sample() walks the attached registries and appends every counter and gauge
// value — and every histogram's count, sum, p50 and p99 — to a per-metric
// Series. Metrics appearing after the sampler started are picked up on the
// next Sample, so late-registered instruments (e.g. per-client gauges) need
// no coordination.
type Sampler struct {
	window int
	regs   []*Registry
	clock  func() float64

	mu     sync.Mutex
	series map[string]*Series
	order  []string
}

// NewSampler returns a sampler keeping window points per metric across the
// given registries (Default when none given). Timestamps are wall-clock
// seconds since the sampler's creation.
func NewSampler(window int, regs ...*Registry) *Sampler {
	if len(regs) == 0 {
		regs = []*Registry{Default}
	}
	t0 := time.Now()
	return &Sampler{
		window: window,
		regs:   regs,
		clock:  func() float64 { return time.Since(t0).Seconds() },
		series: make(map[string]*Series),
	}
}

// SetClock replaces the timestamp source (tests, virtual-time runs).
func (sp *Sampler) SetClock(clock func() float64) { sp.clock = clock }

func (sp *Sampler) append(name string, t, v float64) {
	sp.mu.Lock()
	s, ok := sp.series[name]
	if !ok {
		s = NewSeries(sp.window)
		sp.series[name] = s
		sp.order = append(sp.order, name)
	}
	sp.mu.Unlock()
	s.Append(t, v)
}

// Sample takes one snapshot of every attached registry.
func (sp *Sampler) Sample() {
	now := sp.clock()
	for _, r := range sp.regs {
		for _, s := range r.Snapshot() {
			switch s.Kind {
			case KindCounter, KindGauge:
				sp.append(s.Name, now, s.Value)
			case KindHistogram:
				sp.append(s.Name+":count", now, float64(s.Count))
				sp.append(s.Name+":sum", now, s.Sum)
				sp.append(s.Name+":p50", now, QuantileFromBuckets(s.Buckets, 0.5))
				sp.append(s.Name+":p99", now, QuantileFromBuckets(s.Buckets, 0.99))
			}
		}
	}
}

// Start samples every interval on a background goroutine until the returned
// stop function is called (idempotent).
func (sp *Sampler) Start(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				sp.Sample()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Series returns the history recorded under name (nil if never sampled).
func (sp *Sampler) Series(name string) *Series {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.series[name]
}

// Names returns every recorded series name in first-seen order.
func (sp *Sampler) Names() []string {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return append([]string(nil), sp.order...)
}

// seriesJSON is the /api/series wire schema for one metric history.
type seriesJSON struct {
	Name   string       `json:"name"`
	Points [][2]float64 `json:"points"`
}

// WriteJSON dumps every series as {"series":[{name, points:[[t,v],...]}]}.
// NaN/±Inf points (e.g. quantiles of an empty histogram) are skipped —
// encoding/json cannot represent them.
func (sp *Sampler) WriteJSON(w io.Writer) error {
	names := sp.Names()
	out := struct {
		Series []seriesJSON `json:"series"`
	}{Series: make([]seriesJSON, 0, len(names))}
	for _, name := range names {
		s := sp.Series(name)
		if s == nil {
			continue
		}
		ts, vs := s.Points()
		sj := seriesJSON{Name: name, Points: make([][2]float64, 0, len(ts))}
		for i := range ts {
			if math.IsNaN(vs[i]) || math.IsInf(vs[i], 0) {
				continue
			}
			sj.Points = append(sj.Points, [2]float64{ts[i], vs[i]})
		}
		out.Series = append(out.Series, sj)
	}
	return json.NewEncoder(w).Encode(out)
}

// QuantileFromBuckets estimates the q-quantile from cumulative snapshot
// buckets with the same linear-interpolation rule as Histogram.Quantile.
func QuantileFromBuckets(buckets []BucketSample, q float64) float64 {
	if math.IsNaN(q) || q < 0 || q > 1 || len(buckets) == 0 {
		return math.NaN()
	}
	total := buckets[len(buckets)-1].Cumulative
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	lower := 0.0
	var prev int64
	for _, b := range buckets {
		if float64(b.Cumulative) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				// Rank falls in the +Inf bucket: clamp to the highest
				// finite bound (the previous bucket's upper edge).
				return lower
			}
			inBucket := b.Cumulative - prev
			if inBucket == 0 {
				return lower
			}
			if b.UpperBound == lower {
				return b.UpperBound
			}
			frac := (rank - float64(prev)) / float64(inBucket)
			return lower + (b.UpperBound-lower)*frac
		}
		if !math.IsInf(b.UpperBound, 1) {
			lower = b.UpperBound
		}
		prev = b.Cumulative
	}
	return lower
}
