package metrics

import "net/http"

// SeriesHandler serves the sampler's recorded history as JSON — the /api/series
// endpoint behind the live dashboard.
func (sp *Sampler) SeriesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = sp.WriteJSON(w)
	})
}

// DashHandler serves the stdlib-only live dashboard page: one sparkline card
// per recorded series (inline SVG, no external assets), polling /api/series.
// Mount it at /dash next to the sampler's SeriesHandler at /api/series.
func DashHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashPage))
	})
}

// dashPage is the whole dashboard: fetch series JSON, render sparkline cards
// with a hover tooltip, flag straggler gauges with a labelled badge, and offer
// a latest-values table view. Colors are defined once per role so light and
// dark mode swap in one place.
const dashPage = `<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width,initial-scale=1">
<title>Eco-FL fleet dashboard</title>
<style>
:root {
  color-scheme: light;
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series: #2a78d6; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) { :root {
  color-scheme: dark;
  --page: #0d0d0d; --surface: #1a1a19;
  --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
  --series: #3987e5; --critical: #d03b3b;
} }
* { box-sizing: border-box; }
body { margin: 0; padding: 16px 20px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
header { display: flex; gap: 12px; align-items: baseline; flex-wrap: wrap; margin-bottom: 14px; }
h1 { font-size: 17px; margin: 0; font-weight: 650; }
#status { color: var(--muted); font-size: 12px; }
#filter { margin-left: auto; padding: 5px 9px; border: 1px solid var(--border);
  border-radius: 7px; background: var(--surface); color: var(--ink); min-width: 220px; }
#grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(270px, 1fr)); gap: 10px; }
.card { background: var(--surface); border: 1px solid var(--border); border-radius: 9px;
  padding: 10px 12px 8px; }
.card.straggle { border-color: var(--critical); }
.name { color: var(--ink-2); font-size: 11.5px; overflow-wrap: anywhere; }
.row { display: flex; align-items: baseline; gap: 8px; margin: 2px 0 4px; }
.val { font-size: 19px; font-weight: 650; }
.badge { color: var(--critical); font-size: 10.5px; font-weight: 700; letter-spacing: 0.04em; }
.badge::before { content: "\25B2 "; }
svg { display: block; width: 100%; height: 52px; }
.spark { fill: none; stroke: var(--series); stroke-width: 2; stroke-linejoin: round; stroke-linecap: round; }
.straggle .spark { stroke: var(--critical); }
.base { stroke: var(--grid); stroke-width: 1; }
.dot { fill: var(--series); }
.straggle .dot { fill: var(--critical); }
#tip { position: fixed; pointer-events: none; display: none; background: var(--surface);
  border: 1px solid var(--border); border-radius: 6px; padding: 3px 7px; font-size: 11.5px;
  color: var(--ink); box-shadow: 0 2px 8px rgba(0,0,0,0.15); z-index: 2;
  font-variant-numeric: tabular-nums; }
details { margin-top: 16px; }
summary { color: var(--ink-2); cursor: pointer; font-size: 12.5px; }
table { border-collapse: collapse; margin-top: 8px; font-size: 12.5px; }
td, th { text-align: left; padding: 3px 14px 3px 0; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
th { color: var(--muted); font-weight: 600; }
</style></head><body>
<header>
  <h1>Eco-FL fleet dashboard</h1><span id="status">connecting…</span>
  <input id="filter" type="search" placeholder="filter series…" aria-label="filter series">
</header>
<div id="grid"></div>
<div id="tip" role="status"></div>
<details><summary>Latest values (table view)</summary>
  <table><thead><tr><th>series</th><th>t</th><th>value</th></tr></thead>
  <tbody id="tbody"></tbody></table>
</details>
<script>
"use strict";
// Key fleet signals sort first; everything else follows alphabetically.
const PIN = ["ecofl_straggler", "ecofl_server_eval_accuracy", "ecofl_fl_eval_accuracy",
  "ecofl_flnet_sessions_active", "ecofl_flnet_lease_expired_total", "ecofl_fl_readmissions_total",
  "ecofl_node_push_interval_seconds", "ecofl_fl_round_virtual_seconds",
  "ecofl_flnet_server_request_seconds", "ecofl_fl_staleness", "ecofl_fl_group_size",
  "ecofl_runtime_goroutines", "ecofl_runtime_heap_bytes", "ecofl_runtime_gc_pause_p99_seconds"];
const rank = n => { const i = PIN.findIndex(p => n.startsWith(p)); return i < 0 ? PIN.length : i; };
const fmt = v => {
  if (!isFinite(v)) return String(v);
  const a = Math.abs(v);
  if (a !== 0 && (a >= 1e6 || a < 1e-3)) return v.toExponential(2);
  return String(+v.toPrecision(4));
};
const W = 260, H = 52, PAD = 4;
const tip = document.getElementById("tip");
const cards = new Map(); // name -> {card, path, dot, val, badge, pts}

function project(pts) {
  let tMin = Infinity, tMax = -Infinity, vMin = Infinity, vMax = -Infinity;
  for (const [t, v] of pts) {
    tMin = Math.min(tMin, t); tMax = Math.max(tMax, t);
    vMin = Math.min(vMin, v); vMax = Math.max(vMax, v);
  }
  const tS = tMax > tMin ? (W - 2 * PAD) / (tMax - tMin) : 0;
  const vS = vMax > vMin ? (H - 2 * PAD) / (vMax - vMin) : 0;
  return pts.map(([t, v]) => [PAD + (t - tMin) * tS, vS ? H - PAD - (v - vMin) * vS : H / 2]);
}

function makeCard(name) {
  const card = document.createElement("div");
  card.className = "card";
  card.innerHTML = '<div class="name"></div><div class="row"><span class="val"></span>' +
    '<span class="badge" hidden>STRAGGLER</span></div>' +
    '<svg viewBox="0 0 ' + W + " " + H + '" preserveAspectRatio="none" role="img">' +
    '<line class="base" x1="0" y1="' + (H - 1) + '" x2="' + W + '" y2="' + (H - 1) + '"></line>' +
    '<polyline class="spark" points=""></polyline><circle class="dot" r="2.5" opacity="0"></circle></svg>';
  card.querySelector(".name").textContent = name;
  const entry = {
    card, val: card.querySelector(".val"), badge: card.querySelector(".badge"),
    path: card.querySelector(".spark"), dot: card.querySelector(".dot"),
    svg: card.querySelector("svg"), pts: [],
  };
  entry.svg.addEventListener("mousemove", ev => hover(entry, ev));
  entry.svg.addEventListener("mouseleave", () => { tip.style.display = "none"; entry.dot.setAttribute("opacity", "0"); });
  cards.set(name, entry);
  return entry;
}

function hover(entry, ev) {
  if (!entry.pts.length) return;
  const box = entry.svg.getBoundingClientRect();
  const x = (ev.clientX - box.left) / box.width * W;
  let best = 0, bestD = Infinity;
  entry.proj.forEach(([px], i) => { const d = Math.abs(px - x); if (d < bestD) { bestD = d; best = i; } });
  const [t, v] = entry.pts[best], [px, py] = entry.proj[best];
  entry.dot.setAttribute("cx", px); entry.dot.setAttribute("cy", py); entry.dot.setAttribute("opacity", "1");
  tip.textContent = "t=" + fmt(t) + "s  " + fmt(v);
  tip.style.display = "block";
  tip.style.left = (ev.clientX + 12) + "px"; tip.style.top = (ev.clientY - 10) + "px";
}

function render(series) {
  const grid = document.getElementById("grid");
  const tbody = document.getElementById("tbody");
  const q = document.getElementById("filter").value.toLowerCase();
  series.sort((a, b) => rank(a.name) - rank(b.name) || (a.name < b.name ? -1 : 1));
  tbody.textContent = "";
  for (const s of series) {
    let entry = cards.get(s.name) || makeCard(s.name);
    entry.pts = s.points;
    entry.proj = project(s.points);
    entry.path.setAttribute("points", entry.proj.map(p => p[0].toFixed(1) + "," + p[1].toFixed(1)).join(" "));
    const last = s.points.length ? s.points[s.points.length - 1] : null;
    entry.val.textContent = last ? fmt(last[1]) : "–";
    const straggling = s.name.startsWith("ecofl_straggler") && last && last[1] > 0;
    entry.card.classList.toggle("straggle", straggling);
    entry.badge.hidden = !straggling;
    entry.card.hidden = q && !s.name.toLowerCase().includes(q);
    if (!entry.card.parentNode) grid.appendChild(entry.card);
    grid.appendChild(entry.card); // keep DOM order = sorted order
    if (last) {
      const tr = document.createElement("tr");
      for (const cell of [s.name, fmt(last[0]), fmt(last[1])]) {
        const td = document.createElement("td");
        td.textContent = cell;
        tr.appendChild(td);
      }
      tbody.appendChild(tr);
    }
  }
}

async function refresh() {
  const status = document.getElementById("status");
  try {
    const res = await fetch("api/series", { cache: "no-store" });
    const data = await res.json();
    render(data.series || []);
    status.textContent = (data.series || []).length + " series · updated " + new Date().toLocaleTimeString();
  } catch (err) {
    status.textContent = "fetch failed: " + err;
  }
}
document.getElementById("filter").addEventListener("input", refresh);
refresh();
setInterval(refresh, 2000);
</script></body></html>
`
