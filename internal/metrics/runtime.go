package metrics

import (
	"math"
	rtm "runtime/metrics"
	"sync"
	"time"
)

// Runtime metric keys read from the Go runtime (runtime/metrics). Reading is
// cheap — a handful of atomic loads inside the runtime — so sampling at
// dashboard cadence (or even per-round) costs nothing measurable; the
// overhead guard test in runtime_test.go pins that claim.
const (
	keyGoroutines = "/sched/goroutines:goroutines"
	keyHeapBytes  = "/memory/classes/heap/objects:bytes"
	keyGCPauses   = "/gc/pauses:seconds"
)

// RuntimeSampler publishes Go runtime health — goroutine count, live heap
// bytes, and the GC stop-the-world pause tail — as gauges on a metrics
// Registry, plus monotone high-water marks so an end-of-run snapshot still
// shows the worst moment of the run. Because the instruments live on the
// ordinary registry they appear on /metrics (Prometheus text format) and are
// picked up by any Sampler feeding /dash without extra wiring.
type RuntimeSampler struct {
	goroutines   *Gauge
	goroutineHWM *Gauge
	heapBytes    *Gauge
	heapPeak     *Gauge
	gcPauseP99   *Gauge
	gcPauses     *Gauge

	mu      sync.Mutex
	samples []rtm.Sample
	hwm     float64 // goroutine high-water mark
	peak    float64 // heap bytes peak
}

// NewRuntimeSampler registers the runtime gauges on r (Default when nil) and
// takes an initial sample so the gauges are never zero-valued placeholders.
func NewRuntimeSampler(r *Registry) *RuntimeSampler {
	if r == nil {
		r = Default
	}
	rs := &RuntimeSampler{
		goroutines: r.Gauge("ecofl_runtime_goroutines",
			"live goroutines at the last runtime sample"),
		goroutineHWM: r.Gauge("ecofl_runtime_goroutines_hwm",
			"goroutine high-water mark since the sampler started"),
		heapBytes: r.Gauge("ecofl_runtime_heap_bytes",
			"bytes of live heap objects at the last runtime sample"),
		heapPeak: r.Gauge("ecofl_runtime_heap_bytes_peak",
			"heap bytes peak since the sampler started"),
		gcPauseP99: r.Gauge("ecofl_runtime_gc_pause_p99_seconds",
			"p99 GC stop-the-world pause over the process lifetime"),
		gcPauses: r.Gauge("ecofl_runtime_gc_pauses_total",
			"GC stop-the-world pauses over the process lifetime"),
		samples: []rtm.Sample{
			{Name: keyGoroutines},
			{Name: keyHeapBytes},
			{Name: keyGCPauses},
		},
	}
	rs.Sample()
	return rs
}

// Sample reads the runtime metrics once and updates the gauges and
// high-water marks. Safe for concurrent use.
func (rs *RuntimeSampler) Sample() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rtm.Read(rs.samples)

	g := float64(rs.samples[0].Value.Uint64())
	rs.goroutines.Set(g)
	if g > rs.hwm {
		rs.hwm = g
	}
	rs.goroutineHWM.Set(rs.hwm)

	h := float64(rs.samples[1].Value.Uint64())
	rs.heapBytes.Set(h)
	if h > rs.peak {
		rs.peak = h
	}
	rs.heapPeak.Set(rs.peak)

	if hist := rs.samples[2].Value.Float64Histogram(); hist != nil {
		n, p99 := pauseQuantile(hist, 0.99)
		rs.gcPauses.Set(float64(n))
		if !math.IsNaN(p99) {
			rs.gcPauseP99.Set(p99)
		}
	}
}

// GoroutineHWM returns the goroutine high-water mark observed so far.
func (rs *RuntimeSampler) GoroutineHWM() float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.hwm
}

// PeakHeapBytes returns the heap-bytes peak observed so far.
func (rs *RuntimeSampler) PeakHeapBytes() float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.peak
}

// GCPauseP99 returns the lifetime p99 GC pause in seconds (NaN before the
// first GC).
func (rs *RuntimeSampler) GCPauseP99() float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rtm.Read(rs.samples[2:3])
	if hist := rs.samples[2].Value.Float64Histogram(); hist != nil {
		_, p99 := pauseQuantile(hist, 0.99)
		return p99
	}
	return math.NaN()
}

// Start samples every interval on a background goroutine until the returned
// stop function is called (idempotent). The final state still matters after
// stopping — call Sample once more at end of run for the freshest peaks.
func (rs *RuntimeSampler) Start(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				rs.Sample()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// pauseQuantile estimates the q-quantile of a runtime Float64Histogram by
// taking the upper edge of the bucket containing the target rank — the
// conservative (pessimistic) estimate, appropriate for pause-time tails. It
// returns the total observation count and the estimate (NaN when empty).
func pauseQuantile(h *rtm.Float64Histogram, q float64) (total uint64, est float64) {
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0, math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			// Buckets[i+1] is the bucket's upper edge; the final edge may be
			// +Inf, in which case fall back to its finite lower edge.
			up := h.Buckets[i+1]
			if math.IsInf(up, 1) {
				up = h.Buckets[i]
			}
			return total, up
		}
	}
	return total, h.Buckets[len(h.Buckets)-1]
}
