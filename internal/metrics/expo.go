package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// escapeLabelValue escapes a label value per the Prometheus text exposition
// format: backslash, double-quote, and line feed become \\, \" and \n; every
// other byte (including tabs and non-ASCII UTF-8) passes through verbatim.
// Go's %q is NOT equivalent — it escapes tabs and non-printable runes with
// Go-only sequences that Prometheus parsers reject or mis-read.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// UnescapeLabelValue reverses escapeLabelValue — the exposition-format
// round-trip used by tests and by text-format consumers.
func UnescapeLabelValue(v string) string {
	if !strings.Contains(v, `\`) {
		return v
	}
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			switch v[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case '"':
				b.WriteByte('"')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

// formatValue renders a float the way the Prometheus text format expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE header per family, counters
// and gauges as single samples, histograms as cumulative _bucket series plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	ms := make([]*metric, len(keys))
	for i, k := range keys {
		ms[i] = r.metrics[k]
	}
	r.mu.Unlock()

	// Group by family so multi-label families share one header, keeping
	// families in first-registration order and members in name order.
	byFamily := make(map[string][]*metric)
	var families []string
	for _, m := range ms {
		if _, ok := byFamily[m.family]; !ok {
			families = append(families, m.family)
		}
		byFamily[m.family] = append(byFamily[m.family], m)
	}
	for _, fam := range families {
		members := byFamily[fam]
		sort.Slice(members, func(i, j int) bool {
			return members[i].fullName("", "") < members[j].fullName("", "")
		})
		head := members[0]
		if head.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, head.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, head.kind); err != nil {
			return err
		}
		for _, m := range members {
			var err error
			switch m.kind {
			case KindCounter:
				_, err = fmt.Fprintf(w, "%s %d\n", m.fullName("", ""), m.counter.Value())
			case KindGauge:
				_, err = fmt.Fprintf(w, "%s %s\n", m.fullName("", ""), formatValue(m.gauge.Value()))
			case KindHistogram:
				h := m.hist
				bucket := *m
				bucket.family = m.family + "_bucket"
				var cum int64
				for bi, bound := range h.bounds {
					cum += h.counts[bi].Load()
					if _, err = fmt.Fprintf(w, "%s %d\n", bucket.fullName("le", formatValue(bound)), cum); err != nil {
						return err
					}
				}
				cum += h.inf.Load()
				if _, err = fmt.Fprintf(w, "%s %d\n", bucket.fullName("le", "+Inf"), cum); err != nil {
					return err
				}
				sum := *m
				sum.family = m.family + "_sum"
				if _, err = fmt.Fprintf(w, "%s %s\n", sum.fullName("", ""), formatValue(h.Sum())); err != nil {
					return err
				}
				count := *m
				count.family = m.family + "_count"
				_, err = fmt.Fprintf(w, "%s %d\n", count.fullName("", ""), cum)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonMetric is the WriteJSON schema for one metric.
type jsonMetric struct {
	Name    string           `json:"name"`
	Kind    string           `json:"kind"`
	Help    string           `json:"help,omitempty"`
	Value   *float64         `json:"value,omitempty"`
	Count   *int64           `json:"count,omitempty"`
	Sum     *float64         `json:"sum,omitempty"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// WriteJSON dumps a snapshot as indented JSON — the end-of-run export format
// of `cmd/ecofl --metrics-json`. NaN/±Inf values are rendered as strings in
// the buckets map keys and clamped to null for values (encoding/json cannot
// represent them).
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	out := make([]jsonMetric, 0, len(snap))
	for _, s := range snap {
		jm := jsonMetric{Name: s.Name, Kind: s.Kind.String(), Help: s.Help}
		switch s.Kind {
		case KindCounter, KindGauge:
			v := s.Value
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				jm.Value = &v
			}
		case KindHistogram:
			c, sum := s.Count, s.Sum
			jm.Count = &c
			if !math.IsNaN(sum) && !math.IsInf(sum, 0) {
				jm.Sum = &sum
			}
			jm.Buckets = make(map[string]int64, len(s.Buckets))
			for _, b := range s.Buckets {
				jm.Buckets[formatValue(b.UpperBound)] = b.Cumulative
			}
		}
		out = append(out, jm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }
