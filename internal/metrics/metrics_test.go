package metrics

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ecofl_test_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Get-or-create returns the same instance.
	if r.Counter("ecofl_test_total", "") != c {
		t.Fatal("second Counter() call returned a different instance")
	}
	g := r.Gauge("ecofl_test_gauge", "a gauge")
	g.Set(1.5)
	g.Add(-0.25)
	if got := g.Value(); got != 1.25 {
		t.Fatalf("gauge = %v, want 1.25", got)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ecofl_clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering ecofl_clash as a gauge should panic")
		}
	}()
	r.Gauge("ecofl_clash", "")
}

func TestLabelsCanonicalOrder(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ecofl_lbl_total", "", "b", "2", "a", "1")
	b := r.Counter("ecofl_lbl_total", "", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order should not distinguish metrics")
	}
	s, ok := r.Get(`ecofl_lbl_total{a="1",b="2"}`)
	if !ok {
		t.Fatalf("canonical name not found in snapshot: %+v", r.Snapshot())
	}
	if s.Family != "ecofl_lbl_total" {
		t.Fatalf("family = %q", s.Family)
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ecofl_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	s, ok := r.Get("ecofl_lat_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	wantCum := []int64{1, 3, 4, 5} // ≤0.1, ≤1, ≤10, +Inf
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for i, b := range s.Buckets {
		if b.Cumulative != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d (%+v)", i, b.Cumulative, wantCum[i], s.Buckets)
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", s.Buckets[3].UpperBound)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ecofl_reqs_total", "requests", "kind", "push").Add(3)
	r.Counter("ecofl_reqs_total", "requests", "kind", "pull").Add(7)
	r.Gauge("ecofl_acc", "accuracy").Set(0.875)
	h := r.Histogram("ecofl_lat_seconds", "latency", []float64{0.5, 2})
	h.Observe(0.2)
	h.Observe(1)
	h.Observe(100)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE ecofl_reqs_total counter",
		`ecofl_reqs_total{kind="push"} 3`,
		`ecofl_reqs_total{kind="pull"} 7`,
		"# TYPE ecofl_acc gauge",
		"ecofl_acc 0.875",
		"# TYPE ecofl_lat_seconds histogram",
		`ecofl_lat_seconds_bucket{le="0.5"} 1`,
		`ecofl_lat_seconds_bucket{le="2"} 2`,
		`ecofl_lat_seconds_bucket{le="+Inf"} 3`,
		"ecofl_lat_seconds_sum 101.2",
		"ecofl_lat_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Each family header appears exactly once even with several label sets.
	if strings.Count(text, "# TYPE ecofl_reqs_total") != 1 {
		t.Fatalf("duplicated family header:\n%s", text)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ecofl_hits_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "ecofl_hits_total 1") {
		t.Fatalf("handler output:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("ecofl_n_total", "").Add(5)
	h := r.Histogram("ecofl_h", "", []float64{1})
	h.Observe(0.5)
	h.Observe(3)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, b.String())
	}
	if len(out) != 2 {
		t.Fatalf("got %d metrics: %s", len(out), b.String())
	}
}

// TestConcurrentUpdates exercises the lock-free paths under the race
// detector (scripts/ci.sh runs this package with -race).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ecofl_conc_total", "")
	g := r.Gauge("ecofl_conc_gauge", "")
	h := r.Histogram("ecofl_conc_hist", "", []float64{10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ecofl_q_seconds", "", []float64{1, 2, 4})
	// One observation per finite bucket: the CDF crosses 0.5 halfway through
	// the middle bucket → linear interpolation gives 1.5.
	for _, v := range []float64{0.5, 1.5, 3} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("p50 = %v, want 1.5", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %v, want 0 (lower edge of first bucket)", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("p100 = %v, want 4 (upper edge of last occupied bucket)", got)
	}
	// Out-of-range q and the empty histogram are NaN.
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Fatalf("Quantile(%v) = %v, want NaN", q, got)
		}
	}
	if got := r.Histogram("ecofl_q_empty", "", []float64{1}).Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram p50 = %v, want NaN", got)
	}
}

func TestHistogramQuantileUniformBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ecofl_qu_seconds", "", []float64{1, 10})
	// 100 observations all inside (0, 1]: interpolation treats them as
	// uniformly spread, so pXX ≈ XX/100.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	for _, tc := range []struct{ q, want float64 }{{0.25, 0.25}, {0.5, 0.5}, {0.99, 0.99}} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantileInfBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ecofl_qinf_seconds", "", []float64{1, 2})
	// Everything beyond the last finite bound: the estimate clamps to it.
	h.Observe(50)
	h.Observe(60)
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %v, want clamp to highest finite bound 2", got)
	}
	// The snapshot-based estimator agrees with the live one.
	s, ok := r.Get("ecofl_qinf_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if got := QuantileFromBuckets(s.Buckets, 0.5); got != h.Quantile(0.5) {
		t.Fatalf("QuantileFromBuckets = %v, Histogram.Quantile = %v", got, h.Quantile(0.5))
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
