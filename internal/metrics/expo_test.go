package metrics

import (
	"regexp"
	"strings"
	"testing"
)

func TestEscapeLabelValueRoundTrip(t *testing.T) {
	cases := []string{
		"plain",
		`back\slash`,
		`say "hi"`,
		"line1\nline2",
		"tab\there", // tabs pass through raw — the text format allows them
		"unicodé ✓",
		`\\already\"escaped\n`,
		"",
	}
	for _, v := range cases {
		esc := escapeLabelValue(v)
		if strings.ContainsRune(esc, '\n') {
			t.Fatalf("escaped value %q still contains a raw newline", esc)
		}
		if got := UnescapeLabelValue(esc); got != v {
			t.Fatalf("round trip of %q: escaped %q, unescaped %q", v, esc, got)
		}
	}
}

// sampleLine matches one exposition sample with a single label, capturing the
// escaped label value (a sequence of non-special chars or backslash escapes).
var sampleLine = regexp.MustCompile(`^ecofl_hostile_total\{v="((?:[^"\\\n]|\\.)*)"\} 1$`)

// TestPrometheusExpositionHostileLabels registers counters whose label values
// contain every character the text format requires escaping (backslash,
// double-quote, newline), writes the exposition, and re-parses it: every line
// must be well-formed (no raw newlines inside the braces) and unescape back
// to the original value.
func TestPrometheusExpositionHostileLabels(t *testing.T) {
	hostile := []string{
		`back\slash`,
		`say "hi"`,
		"multi\nline",
		`trailing\`,
		"mix\\\"\nall",
	}
	r := NewRegistry()
	for _, v := range hostile {
		r.Counter("ecofl_hostile_total", "hostile labels", "v", v).Inc()
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, line := range strings.Split(b.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed exposition line %q\nfull output:\n%s", line, b.String())
		}
		got[UnescapeLabelValue(m[1])] = true
	}
	for _, v := range hostile {
		if !got[v] {
			t.Fatalf("label value %q did not round-trip; parsed set: %v\noutput:\n%s", v, got, b.String())
		}
	}
}
