package plot

import (
	"bytes"
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecofl/internal/trace"
)

func sampleSeries(t *testing.T) *trace.Series {
	t.Helper()
	s := trace.New("acc", "time_s", "accuracy")
	s.Add(0, 0.1)
	s.Add(100, 0.5)
	s.Add(200, 0.8)
	return s
}

func TestRenderValidSVG(t *testing.T) {
	c := &Chart{Title: "Fig. 7 <cifar>", XLabel: "time_s", YLabel: "accuracy"}
	if err := c.AddSeries("Eco-FL", sampleSeries(t), "time_s", "accuracy"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<polyline") {
		t.Fatal("chart must contain a polyline")
	}
	if !strings.Contains(out, "Fig. 7 &lt;cifar&gt;") {
		t.Fatal("title must be XML-escaped")
	}
	// The document must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
}

func TestRenderEmptyChartErrors(t *testing.T) {
	c := &Chart{Title: "empty"}
	var buf bytes.Buffer
	if err := c.Render(&buf); err == nil {
		t.Fatal("empty chart must error")
	}
}

func TestAddSeriesMissingColumn(t *testing.T) {
	c := &Chart{}
	if err := c.AddSeries("x", sampleSeries(t), "nope", "accuracy"); err == nil {
		t.Fatal("missing column must error")
	}
}

func TestCurveChartAndWriteFile(t *testing.T) {
	a := sampleSeries(t)
	b := trace.New("acc2", "time_s", "accuracy")
	b.Add(0, 0.2)
	b.Add(150, 0.9)
	chart, err := CurveChart("comparison", "time_s", "accuracy", []*trace.Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(chart.Lines))
	}
	dir := t.TempDir()
	if err := WriteFile(dir, "fig", chart); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("file must start with <svg")
	}
}

func TestDegenerateExtentHandled(t *testing.T) {
	s := trace.New("flat", "x", "y")
	s.Add(5, 1)
	s.Add(5, 1) // zero x and y range
	c := &Chart{}
	if err := c.AddSeries("flat", s, "x", "y"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatalf("degenerate extent must not error: %v", err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("no NaN coordinates allowed")
	}
}

func TestBarChartRender(t *testing.T) {
	c := &BarChart{Title: "Fig. 11", XLabel: "epoch time (s)", Bars: []Bar{
		{Label: "Nano-H Only", Value: 26.6},
		{Label: "Data Parallelism", Value: 53.4},
		{Label: "Eco-FL Pipeline", Value: 20.7},
	}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<rect") != 4 { // background + 3 bars
		t.Fatalf("want 4 rects, got %d", strings.Count(out, "<rect"))
	}
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	empty := &BarChart{Title: "empty"}
	if err := empty.Render(&buf); err == nil {
		t.Fatal("empty bar chart must error")
	}
	if err := WriteBarFile(t.TempDir(), "bars", c); err != nil {
		t.Fatal(err)
	}
}
