// Package plot renders trace series as standalone SVG line charts using
// only the standard library — enough to turn every regenerated experiment
// into an actual figure file next to its CSV.
package plot

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"ecofl/internal/trace"
)

// Chart is one SVG line chart over multiple series sharing an x column.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Lines are (name, x-values, y-values) triples.
	Lines []Line
	// Width/Height default to 640×400.
	Width, Height int
}

// Line is a named series.
type Line struct {
	Name string
	X, Y []float64
}

// palette is a small colour cycle for series.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf"}

// AddSeries appends a line from two columns of a trace.Series.
func (c *Chart) AddSeries(name string, s *trace.Series, xCol, yCol string) error {
	x, err := s.Col(xCol)
	if err != nil {
		return err
	}
	y, err := s.Col(yCol)
	if err != nil {
		return err
	}
	c.Lines = append(c.Lines, Line{Name: name, X: x, Y: y})
	return nil
}

// bounds returns the data extent across all lines.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, l := range c.Lines {
		for i := range l.X {
			xmin = math.Min(xmin, l.X[i])
			xmax = math.Max(xmax, l.X[i])
			ymin = math.Min(ymin, l.Y[i])
			ymax = math.Max(ymax, l.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return 0, 0, 0, 0, false
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax, true
}

// Render writes the chart as a standalone SVG document.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width == 0 {
		width = 640
	}
	if height == 0 {
		height = 400
	}
	const marginL, marginR, marginT, marginB = 60, 20, 30, 45
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	xmin, xmax, ymin, ymax, ok := c.bounds()
	if !ok {
		return fmt.Errorf("plot: chart %q has no data", c.Title)
	}
	sx := func(x float64) float64 { return float64(marginL) + (x-xmin)/(xmax-xmin)*plotW }
	sy := func(y float64) float64 { return float64(marginT) + plotH - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14" text-anchor="middle">%s</text>`+"\n", width/2, xmlEscape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+int(plotH), marginL+int(plotW), marginT+int(plotH))
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+int(plotH))
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/4
		fy := ymin + (ymax-ymin)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" text-anchor="middle">%s</text>`+"\n",
			sx(fx), marginT+int(plotH)+16, fmtTick(fx))
		fmt.Fprintf(&b, `<text x="%d" y="%.0f" text-anchor="end">%s</text>`+"\n",
			marginL-6, sy(fy)+4, fmtTick(fy))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
		marginL+int(plotW)/2, height-8, xmlEscape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		marginT+int(plotH)/2, marginT+int(plotH)/2, xmlEscape(c.YLabel))

	// Lines + legend.
	for i, l := range c.Lines {
		color := palette[i%len(palette)]
		var pts []string
		for j := range l.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(l.X[j]), sy(l.Y[j])))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		lx, ly := marginL+10, marginT+14*(i+1)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly-4, lx+18, ly-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", lx+24, ly, xmlEscape(l.Name))
	}
	fmt.Fprintln(&b, "</svg>")
	_, err := io.WriteString(w, b.String())
	return err
}

func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// WriteFile renders the chart to <dir>/<name>.svg.
func WriteFile(dir, name string, c *Chart) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".svg"))
	if err != nil {
		return err
	}
	err = c.Render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// CurveChart builds a chart from many single-curve series that share column
// names (e.g. the fig7/fig8 accuracy curves).
func CurveChart(title, xCol, yCol string, series []*trace.Series) (*Chart, error) {
	c := &Chart{Title: title, XLabel: xCol, YLabel: yCol}
	for _, s := range series {
		if err := c.AddSeries(s.Name, s, xCol, yCol); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// BarChart renders grouped horizontal bars — the Fig. 11-style epoch-time
// panels and Table 2 comparisons.
type BarChart struct {
	Title         string
	XLabel        string
	Bars          []Bar
	Width, Height int
}

// Bar is one labelled value.
type Bar struct {
	Label string
	Value float64
}

// Render writes the bar chart as a standalone SVG document.
func (c *BarChart) Render(w io.Writer) error {
	if len(c.Bars) == 0 {
		return fmt.Errorf("plot: bar chart %q has no data", c.Title)
	}
	width, height := c.Width, c.Height
	if width == 0 {
		width = 640
	}
	if height == 0 {
		height = 60 + 28*len(c.Bars)
	}
	const marginL, marginR, marginT, marginB = 150, 60, 30, 30
	plotW := float64(width - marginL - marginR)
	maxV := 0.0
	for _, b := range c.Bars {
		if b.Value > maxV {
			maxV = b.Value
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%d" y="18" font-size="14" text-anchor="middle">%s</text>`+"\n", width/2, xmlEscape(c.Title))
	barH := 20
	for i, b := range c.Bars {
		y := marginT + i*28
		w := b.Value / maxV * plotW
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="end">%s</text>`+"\n", marginL-8, y+barH-5, xmlEscape(b.Label))
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="%s"/>`+"\n",
			marginL, y, w, barH, palette[i%len(palette)])
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d">%s</text>`+"\n", float64(marginL)+w+4, y+barH-5, fmtTick(b.Value))
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", marginL+int(plotW)/2, height-8, xmlEscape(c.XLabel))
	fmt.Fprintln(&sb, "</svg>")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteBarFile renders the bar chart to <dir>/<name>.svg.
func WriteBarFile(dir, name string, c *BarChart) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".svg"))
	if err != nil {
		return err
	}
	err = c.Render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
