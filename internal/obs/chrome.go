package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// chromeEvent is the trace-event JSON schema (catapult format). Complete
// spans use ph "X" with ts/dur in microseconds; instants use ph "i";
// process/thread names are "M" metadata events.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON-object flavour of the format, which
// tolerates extra fields and is what chrome://tracing's "Load" expects.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const secondsToMicros = 1e6

// WriteChromeTrace exports the recorded events as Chrome trace-event JSON.
// Events are sorted by (pid, tid, start) so the output is deterministic for
// tests regardless of goroutine interleaving during recording.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	var events []Event
	var procNames map[int]string
	var threads map[[2]int]string
	if t != nil {
		t.mu.Lock()
		events = append([]Event(nil), t.events...)
		procNames = make(map[int]string, len(t.procNames))
		for k, v := range t.procNames {
			procNames[k] = v
		}
		threads = make(map[[2]int]string, len(t.threads))
		for k, v := range t.threads {
			threads[k] = v
		}
		t.mu.Unlock()
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].PID != events[j].PID {
			return events[i].PID < events[j].PID
		}
		if events[i].TID != events[j].TID {
			return events[i].TID < events[j].TID
		}
		return events[i].Start < events[j].Start
	})

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	var pids []int
	for pid := range procNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": procNames[pid]},
		})
	}
	var tkeys [][2]int
	for k := range threads {
		tkeys = append(tkeys, k)
	}
	sort.Slice(tkeys, func(i, j int) bool {
		if tkeys[i][0] != tkeys[j][0] {
			return tkeys[i][0] < tkeys[j][0]
		}
		return tkeys[i][1] < tkeys[j][1]
	})
	for _, k := range tkeys {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: k[0], TID: k[1],
			Args: map[string]any{"name": threads[k]},
		})
	}

	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, TS: e.Start * secondsToMicros,
			PID: e.PID, TID: e.TID,
		}
		if e.Instant {
			ce.Ph = "i"
			ce.S = "t"
		} else {
			ce.Ph = "X"
			dur := e.Dur * secondsToMicros
			ce.Dur = &dur
		}
		if len(e.Args) > 0 {
			ce.Args = make(map[string]any, len(e.Args))
			for k, v := range e.Args {
				ce.Args[k] = v
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeTraceFile writes the trace to path.
func (t *Trace) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = t.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
