package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestEventsFromIncrementalRead(t *testing.T) {
	tr := New(nil)
	tr.Span(1, 0, "a", "c", 0, 1, nil)
	tr.Span(1, 0, "b", "c", 1, 2, nil)
	mark := tr.Len()
	if got := tr.EventsFrom(0); len(got) != 2 {
		t.Fatalf("EventsFrom(0) = %d events, want 2", len(got))
	}
	if got := tr.EventsFrom(mark); got != nil {
		t.Fatalf("EventsFrom(high-water) = %v, want nil", got)
	}
	tr.Span(1, 0, "c", "c", 2, 3, nil)
	got := tr.EventsFrom(mark)
	if len(got) != 1 || got[0].Name != "c" {
		t.Fatalf("EventsFrom(mark) = %+v, want just the new span", got)
	}
	if got := tr.EventsFrom(-5); len(got) != 3 {
		t.Fatalf("negative from should read everything, got %d", len(got))
	}
	var nilTrace *Trace
	if nilTrace.EventsFrom(0) != nil {
		t.Fatal("nil trace must return nil")
	}
}

func TestImportEventsRemapsPidAndShiftsClock(t *testing.T) {
	// The remote node records on its own clock starting at 0.
	remote := New(nil)
	remote.Span(7, 2, "fwd", "stage", 1.0, 1.5, map[string]float64{"micro": 3})
	remote.InstantAt(7, 2, "mark", "stage", 2.0)

	// The server's clock reads 10.25 when the batch (senderNow = 2.5) lands.
	server := New(nil)
	offset := 10.25 - 2.5
	server.Span(0, 0, "serve", "srv", 10, 10.1, nil)
	server.ImportEvents(3, offset, remote.Events())

	evs := server.Events()
	if len(evs) != 3 {
		t.Fatalf("merged trace has %d events, want 3", len(evs))
	}
	imported := evs[1]
	if imported.PID != 3 {
		t.Fatalf("imported pid = %d, want remapped node pid 3", imported.PID)
	}
	if imported.TID != 2 {
		t.Fatalf("imported tid = %d, want passthrough 2", imported.TID)
	}
	if imported.Start != 1.0+offset || imported.Dur != 0.5 {
		t.Fatalf("imported span start/dur = %v/%v, want %v/0.5", imported.Start, imported.Dur, 1.0+offset)
	}
	if imported.Args["micro"] != 3 {
		t.Fatalf("imported args lost: %+v", imported.Args)
	}
	if inst := evs[2]; !inst.Instant || inst.Start != 2.0+offset {
		t.Fatalf("imported instant = %+v, want shifted marker", inst)
	}
	// The original batch is untouched (import copies).
	if remote.Events()[0].PID != 7 {
		t.Fatal("ImportEvents mutated the source events")
	}
}

// TestMergedChromeTraceHasBothNodeLanes is the fleet-trace shape check: after
// importing two nodes' spans, the exported Chrome trace contains spans under
// two distinct pids plus the server's own lane, each with its process name.
func TestMergedChromeTraceHasBothNodeLanes(t *testing.T) {
	server := New(nil)
	server.SetProcessName(0, "ecofl-server")
	server.Span(0, 0, "aggregate", "srv", 0, 1, nil)

	for node := 1; node <= 2; node++ {
		remote := New(nil)
		remote.Span(0, 0, "train", "portal", 0, 2, nil)
		server.SetProcessName(node, "portal")
		server.ImportEvents(node, 5*float64(node), remote.Events())
	}

	var b strings.Builder
	if err := server.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	spanPids := map[int]bool{}
	for _, e := range out.TraceEvents {
		if e.Ph == "X" {
			spanPids[e.PID] = true
		}
	}
	for _, pid := range []int{0, 1, 2} {
		if !spanPids[pid] {
			t.Fatalf("merged trace missing spans for pid %d: %v", pid, spanPids)
		}
	}
}
