package obs

import (
	"math/rand"
	"testing"

	"ecofl/internal/nn"
	"ecofl/internal/tensor"
)

// trainBatchLoop is the shared TrainBatch hot loop: one forward/backward/
// update step per iteration, with per-step spans recorded through tr (which
// may be nil — the nop recorder).
func trainBatchLoop(b *testing.B, tr *Trace) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP(rng, 32, 64, 10)
	x := tensor.Randn(rng, 1, 16, 32)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 10
	}
	opt := &nn.SGD{LR: 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(0, 0, "TrainBatch", "compute")
		net.TrainBatch(x, labels, opt)
		sp.End()
	}
}

// BenchmarkTrainBatchBare is the uninstrumented baseline.
func BenchmarkTrainBatchBare(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP(rng, 32, 64, 10)
	x := tensor.Randn(rng, 1, 16, 32)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 10
	}
	opt := &nn.SGD{LR: 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainBatch(x, labels, opt)
	}
}

// BenchmarkTrainBatchNopRecorder runs the same loop through a nil *Trace —
// comparing its ns/op against BenchmarkTrainBatchBare proves the disabled
// recorder adds ~0 ns to the hot path.
func BenchmarkTrainBatchNopRecorder(b *testing.B) {
	trainBatchLoop(b, nil)
}

// BenchmarkTrainBatchRecording is the enabled-recorder cost for scale.
func BenchmarkTrainBatchRecording(b *testing.B) {
	trainBatchLoop(b, NewWall())
}

// BenchmarkNopSpanOnly isolates the per-span overhead of the nop recorder:
// a Begin/End pair on a nil *Trace, nothing else.
func BenchmarkNopSpanOnly(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(0, 0, "x", "y")
		sp.End()
	}
}
