package journal

import (
	"math"
	"sort"
	"sync"
)

// Fleet merges journals from many nodes into one causally-ordered timeline.
// The server owns one: its own lane records locally, and client journals
// arrive piggybacked on telemetry pushes, get shifted onto the server clock
// with the same offset convention as obs.Trace.ClockOffset, and land in a
// bounded imported ring. Re-delivered batches (telemetry snapshots are
// re-sent verbatim when a push is retried) are deduped with a per-node Seq
// high-water mark. A nil *Fleet is a valid nop, like a nil *Recorder.
type Fleet struct {
	local *Recorder
	max   int

	mu       sync.Mutex
	imported []Event
	next     int
	dropped  uint64
	hwm      map[int]uint64
}

// NewFleet builds a fleet journal around the server's local recorder (which
// may be nil when the server lane itself does not record). capacity bounds
// the imported ring; <= 0 selects DefaultCapacity.
func NewFleet(capacity int, local *Recorder) *Fleet {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Fleet{local: local, max: capacity, hwm: make(map[int]uint64)}
}

// Local returns the server-lane recorder (nil-safe).
func (f *Fleet) Local() *Recorder {
	if f == nil {
		return nil
	}
	return f.local
}

// ClockOffset mirrors obs.Trace.ClockOffset: given a remote journal clock
// reading taken "now", it returns the seconds to add to that node's event
// timestamps to place them on the local clock. Non-finite remote readings
// (hostile or uninitialized) yield offset 0 rather than poisoning the merge.
func (f *Fleet) ClockOffset(remoteNow float64) float64 {
	if f == nil {
		return 0
	}
	if math.IsNaN(remoteNow) || math.IsInf(remoteNow, 0) {
		return 0
	}
	return f.local.Now() - remoteNow
}

// Import merges a batch of events from a remote node, shifting timestamps by
// offset onto the local clock. Events whose Seq is at or below the node's
// high-water mark are dropped as re-deliveries; shifted timestamps are
// clamped at 0 so a negative offset (remote clock ahead) cannot push events
// before the epoch, and non-finite inputs are sanitized instead of imported.
func (f *Fleet) Import(node int, offset float64, evs []Event) {
	if f == nil || len(evs) == 0 {
		return
	}
	if math.IsNaN(offset) || math.IsInf(offset, 0) {
		offset = 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range evs {
		if e.Seq != 0 && e.Seq <= f.hwm[node] {
			continue // re-delivered on retry
		}
		if e.Seq > f.hwm[node] {
			f.hwm[node] = e.Seq
		}
		if math.IsNaN(e.TS) || math.IsInf(e.TS, 0) {
			continue
		}
		e.Node = node
		e.TS += offset
		if e.TS < 0 {
			e.TS = 0
		}
		if len(f.imported) < f.max {
			f.imported = append(f.imported, e)
		} else {
			f.imported[f.next] = e
			f.next++
			if f.next == f.max {
				f.next = 0
			}
			f.dropped++
		}
	}
}

// Events returns the merged timeline — local lane plus every imported node —
// sorted causally by (TS, Node, Seq).
func (f *Fleet) Events() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	imported := make([]Event, 0, len(f.imported))
	imported = append(imported, f.imported[f.next:]...)
	imported = append(imported, f.imported[:f.next]...)
	f.mu.Unlock()
	return Merge(f.local.Events(), imported)
}

// Dropped reports imported events lost to ring overwrite (local-lane drops
// are reported by the local recorder itself).
func (f *Fleet) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Nodes reports how many distinct remote nodes have imported events.
func (f *Fleet) Nodes() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.hwm)
}

// Merge concatenates event batches and sorts them into causal order:
// primarily by timestamp, then by node, then by per-node sequence so
// same-instant events from one recorder keep their recording order.
func Merge(batches ...[]Event) []Event {
	n := 0
	for _, b := range batches {
		n += len(b)
	}
	out := make([]Event, 0, n)
	for _, b := range batches {
		out = append(out, b...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	return out
}

// Filter selects events for queries and the /events endpoint. Nil pointer
// fields match everything; Kind matches exactly or as a dotted prefix
// ("exec" matches "exec.heal"); Last keeps only the trailing N matches.
type Filter struct {
	Node   *int
	Round  *int
	Client *int
	Kind   string
	Last   int
}

// Match reports whether the event passes the filter (ignoring Last).
func (q Filter) Match(e Event) bool {
	if q.Node != nil && e.Node != *q.Node {
		return false
	}
	if q.Round != nil && e.Round != *q.Round {
		return false
	}
	if q.Client != nil && e.Client != *q.Client {
		return false
	}
	if q.Kind != "" && e.Kind != q.Kind {
		if len(e.Kind) <= len(q.Kind) || e.Kind[:len(q.Kind)] != q.Kind || e.Kind[len(q.Kind)] != '.' {
			return false
		}
	}
	return true
}

// Apply filters evs (which must already be ordered) and applies Last.
func Apply(evs []Event, q Filter) []Event {
	out := make([]Event, 0, len(evs))
	for _, e := range evs {
		if q.Match(e) {
			out = append(out, e)
		}
	}
	return Tail(out, q.Last)
}

// Tail returns the last n events (all of them when n <= 0).
func Tail(evs []Event, n int) []Event {
	if n <= 0 || len(evs) <= n {
		return evs
	}
	return evs[len(evs)-n:]
}
