package journal

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// eventsResponse is the /events JSON envelope.
type eventsResponse struct {
	Count   int     `json:"count"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// Handler serves the merged fleet timeline as JSON with query filters:
//
//	/events?node=2&round=5&client=7&kind=exec&last=50
//
// node/round/client are exact integer matches, kind matches exactly or as a
// dotted prefix, last keeps only the trailing N events. Invalid integers are
// a 400; a nil fleet serves an empty timeline.
func (f *Fleet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var q Filter
		bad := func(param, val string) {
			http.Error(w, fmt.Sprintf("events: bad %s %q", param, val), http.StatusBadRequest)
		}
		for _, p := range []struct {
			name string
			dst  **int
		}{{"node", &q.Node}, {"round", &q.Round}, {"client", &q.Client}} {
			if v := r.URL.Query().Get(p.name); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil {
					bad(p.name, v)
					return
				}
				*p.dst = &n
			}
		}
		q.Kind = r.URL.Query().Get("kind")
		if v := r.URL.Query().Get("last"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				bad("last", v)
				return
			}
			q.Last = n
		}
		evs := Apply(f.Events(), q)
		resp := eventsResponse{Count: len(evs), Dropped: f.Dropped() + f.Local().Dropped(), Events: evs}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}
