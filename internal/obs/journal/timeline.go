package journal

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteTimeline renders events (already in causal order) one per line for
// humans: timestamp, node, correlation ids, kind, then sorted attrs. This is
// the dump-on-failure format printed by soak tests and the scenario runner.
func WriteTimeline(w io.Writer, evs []Event) {
	for _, e := range evs {
		var b strings.Builder
		fmt.Fprintf(&b, "%12.6fs node=%-3d", e.TS, e.Node)
		if e.Round != None {
			fmt.Fprintf(&b, " round=%-3d", e.Round)
		} else {
			b.WriteString("          ")
		}
		if e.Client != None {
			fmt.Fprintf(&b, " client=%-3d", e.Client)
		} else {
			b.WriteString("           ")
		}
		fmt.Fprintf(&b, " %-22s", e.Kind)
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, e.Attrs[k])
		}
		fmt.Fprintln(w, b.String())
	}
}

// Timeline renders WriteTimeline to a string.
func Timeline(evs []Event) string {
	var b strings.Builder
	WriteTimeline(&b, evs)
	return b.String()
}

// CountByKind tallies events per kind — the report summary shape.
func CountByKind(evs []Event) map[string]int {
	if len(evs) == 0 {
		return nil
	}
	out := make(map[string]int)
	for _, e := range evs {
		out[e.Kind]++
	}
	return out
}
