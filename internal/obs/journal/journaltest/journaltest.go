// Package journaltest wires flight-recorder dumps into tests: attach
// journals to the systems under test and, if the test fails, the merged
// causal timeline is printed so the failure comes with its own forensic
// record. Kept separate from package journal so production binaries never
// import "testing".
package journaltest

import (
	"testing"

	"ecofl/internal/obs/journal"
)

// Source is anything that can hand over its buffered events — *Recorder and
// *Fleet both qualify, and both are nil-safe.
type Source interface {
	Events() []journal.Event
}

// DumpOnFailure registers a cleanup that, if the test has failed, merges the
// sources into one causal timeline and logs the last n events (n <= 0 means
// all). Call it right after constructing the journals.
func DumpOnFailure(t testing.TB, n int, srcs ...Source) {
	t.Helper()
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		var batches [][]journal.Event
		for _, s := range srcs {
			if s == nil {
				continue
			}
			batches = append(batches, s.Events())
		}
		all := journal.Merge(batches...)
		tail := journal.Tail(all, n)
		t.Logf("flight recorder: last %d of %d events:\n%s", len(tail), len(all), journal.Timeline(tail))
	})
}
