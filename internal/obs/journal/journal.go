// Package journal is a flight recorder: a bounded ring of typed structured
// events with a nil-safe nop recorder, mirroring the obs.Trace discipline.
// Every subsystem that can misbehave under chaos (fl strategies, flnet client
// and server, the pipeline executor, simnet fault injection) records small
// correlated events — round, client, kind, free-form attrs — so a failing
// soak can be replayed as a causally-ordered cross-node timeline instead of
// being diagnosed from aggregate metrics alone.
//
// Design points:
//
//   - All Recorder methods are nil-safe: a nil *Recorder is a nop at ~0 cost
//     (a nil check and a return), so call sites never guard.
//   - The ring is bounded: once full, the oldest event is overwritten and a
//     dropped counter advances. A flight recorder keeps the *latest* history.
//   - Seq is a per-recorder monotonic sequence. It survives ring wrap, orders
//     events with identical timestamps, and lets importers (journal.Fleet)
//     dedup re-delivered batches (telemetry snapshots are re-sent verbatim on
//     network retry).
//   - Clocks are pluggable so virtual-time simulations (internal/fl) can
//     stamp events on the simulated clock via RecordAt while wall-clock
//     subsystems use New's monotonic wall clock.
package journal

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// None marks a Round or Client field as not applicable to the event.
const None = -1

// DefaultCapacity is the ring size used when a caller passes capacity <= 0.
const DefaultCapacity = 4096

// Event is one recorded occurrence. TS is seconds on the recorder's clock
// (wall time relative to recorder start, or virtual simulation time); Node
// identifies the recording process in a fleet (client id, or -1 for the
// server lane, matching the trace pid convention); Seq is the per-node
// monotonic sequence number; Round and Client carry correlation ids (None
// when not applicable); Kind is a dotted event name from the taxonomy in
// DESIGN.md ("chaos.inject", "exec.heal", ...); Attrs holds event-specific
// detail as strings.
type Event struct {
	TS     float64           `json:"ts"`
	Node   int               `json:"node"`
	Seq    uint64            `json:"seq"`
	Round  int               `json:"round"`
	Client int               `json:"client"`
	Kind   string            `json:"kind"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Recorder is a bounded, concurrency-safe event ring. The zero value is not
// usable; construct with New or NewClock. A nil *Recorder is a valid nop.
type Recorder struct {
	clock    func() float64 // nil => clockless: Record stamps 0, use RecordAt
	node     int
	disabled atomic.Bool

	mu      sync.Mutex
	ring    []Event
	max     int // ring capacity
	next    int // overwrite cursor once len(ring) == max
	seq     uint64
	dropped uint64
}

// New returns a recorder for the given fleet node id whose clock is wall
// time in seconds relative to now. capacity <= 0 selects DefaultCapacity.
func New(node, capacity int) *Recorder {
	t0 := time.Now()
	return NewClock(node, capacity, func() float64 { return time.Since(t0).Seconds() })
}

// NewClock returns a recorder using an explicit clock (seconds). A nil clock
// makes the recorder clockless: Record stamps TS 0 and callers are expected
// to use RecordAt with explicit (virtual) timestamps.
func NewClock(node, capacity int, clock func() float64) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{clock: clock, node: node, max: capacity}
}

// Node reports the fleet node id stamped on recorded events.
func (r *Recorder) Node() int {
	if r == nil {
		return None
	}
	return r.node
}

// Now reads the recorder's clock (0 for nil or clockless recorders). It is
// handed to peers as a shared clock and to journal.Fleet for offset math.
func (r *Recorder) Now() float64 {
	if r == nil || r.clock == nil {
		return 0
	}
	return r.clock()
}

// SetDisabled toggles recording at runtime. A disabled recorder keeps its
// buffered events but ignores new ones; the check is a single atomic load so
// the disabled cost is within noise of the nil nop.
func (r *Recorder) SetDisabled(v bool) {
	if r == nil {
		return
	}
	r.disabled.Store(v)
}

// Record appends an event stamped with the recorder's clock. kv is an
// alternating key/value list; an odd trailing key is paired with "". Use
// journal.None for a non-applicable round or client.
func (r *Recorder) Record(kind string, round, client int, kv ...string) {
	if r == nil || r.disabled.Load() {
		return
	}
	r.RecordAt(r.Now(), kind, round, client, kv...)
}

// RecordAt is Record with an explicit timestamp, for virtual-time callers.
func (r *Recorder) RecordAt(ts float64, kind string, round, client int, kv ...string) {
	if r == nil || r.disabled.Load() {
		return
	}
	var attrs map[string]string
	if len(kv) > 0 {
		attrs = make(map[string]string, (len(kv)+1)/2)
		for i := 0; i < len(kv); i += 2 {
			v := ""
			if i+1 < len(kv) {
				v = kv[i+1]
			}
			attrs[kv[i]] = v
		}
	}
	if math.IsNaN(ts) || math.IsInf(ts, 0) {
		ts = 0
	}
	r.mu.Lock()
	r.seq++
	e := Event{TS: ts, Node: r.node, Seq: r.seq, Round: round, Client: client, Kind: kind, Attrs: attrs}
	if len(r.ring) < r.max {
		r.ring = append(r.ring, e)
	} else {
		r.ring[r.next] = e
		r.next++
		if r.next == r.max {
			r.next = 0
		}
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns the buffered events oldest-first. The slice is a copy.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// EventsSince returns buffered events with Seq > seq, oldest-first. It backs
// incremental shipping: the telemetry piggyback keeps a high-water mark and
// ships only the tail each push.
func (r *Recorder) EventsSince(seq uint64) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, chunk := range [2][]Event{r.ring[r.next:], r.ring[:r.next]} {
		for _, e := range chunk {
			if e.Seq > seq {
				out = append(out, e)
			}
		}
	}
	return out
}

// Len reports the number of buffered events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Cap reports the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return r.max
}

// Dropped reports how many events were overwritten after the ring filled.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Total reports how many events were ever recorded (buffered + dropped).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}
