package journal

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsNop(t *testing.T) {
	var r *Recorder
	r.Record("x", 1, 2, "k", "v")
	r.RecordAt(1.0, "x", 1, 2)
	r.SetDisabled(true)
	if r.Events() != nil || r.EventsSince(0) != nil {
		t.Fatal("nil recorder returned events")
	}
	if r.Len() != 0 || r.Cap() != 0 || r.Dropped() != 0 || r.Total() != 0 {
		t.Fatal("nil recorder reported non-zero state")
	}
	if r.Now() != 0 || r.Node() != None {
		t.Fatal("nil recorder clock/node not zeroed")
	}
}

func TestNilRecordZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record("push.ack", 3, 7, "seq", "41")
	})
	if allocs != 0 {
		t.Fatalf("nil Record allocated %.1f times per call, want 0", allocs)
	}
}

func TestRecordAndOrder(t *testing.T) {
	r := NewClock(2, 8, nil)
	r.RecordAt(1.5, "a", 1, None)
	r.RecordAt(2.5, "b", 1, 4, "cause", "drop")
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Kind != "a" || evs[1].Kind != "b" {
		t.Fatalf("wrong order: %+v", evs)
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("seq not monotonic from 1: %+v", evs)
	}
	if evs[0].Node != 2 || evs[0].Round != 1 || evs[0].Client != None {
		t.Fatalf("correlation ids wrong: %+v", evs[0])
	}
	if evs[1].Attrs["cause"] != "drop" {
		t.Fatalf("attrs lost: %+v", evs[1])
	}
}

func TestOddKVPairsWithEmptyValue(t *testing.T) {
	r := NewClock(0, 4, nil)
	r.RecordAt(0, "x", None, None, "alone")
	if got := r.Events()[0].Attrs["alone"]; got != "" {
		t.Fatalf("odd trailing key = %q, want empty", got)
	}
}

func TestRingWrapDropsOldest(t *testing.T) {
	r := NewClock(0, 3, nil)
	for i := 0; i < 5; i++ {
		r.RecordAt(float64(i), "e", i, None)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	// Oldest two (rounds 0,1) overwritten; survivors in order 2,3,4.
	for i, want := range []int{2, 3, 4} {
		if evs[i].Round != want {
			t.Fatalf("evs[%d].Round = %d, want %d (%+v)", i, evs[i].Round, want, evs)
		}
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
}

func TestEventsSince(t *testing.T) {
	r := NewClock(0, 3, nil)
	for i := 0; i < 5; i++ {
		r.RecordAt(float64(i), "e", i, None)
	}
	evs := r.EventsSince(3)
	if len(evs) != 2 || evs[0].Seq != 4 || evs[1].Seq != 5 {
		t.Fatalf("EventsSince(3) = %+v, want seqs 4,5", evs)
	}
	if got := r.EventsSince(99); got != nil {
		t.Fatalf("EventsSince past head = %+v, want nil", got)
	}
}

func TestDisabled(t *testing.T) {
	r := NewClock(0, 4, nil)
	r.SetDisabled(true)
	r.RecordAt(1, "x", None, None)
	if r.Len() != 0 {
		t.Fatal("disabled recorder recorded")
	}
	r.SetDisabled(false)
	r.RecordAt(2, "y", None, None)
	if r.Len() != 1 {
		t.Fatal("re-enabled recorder did not record")
	}
}

func TestNonFiniteTimestampSanitized(t *testing.T) {
	r := NewClock(0, 4, nil)
	r.RecordAt(math.NaN(), "x", None, None)
	r.RecordAt(math.Inf(1), "y", None, None)
	for _, e := range r.Events() {
		if e.TS != 0 {
			t.Fatalf("non-finite TS leaked: %+v", e)
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New(0, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record("e", i, None)
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("Total = %d, want 800", r.Total())
	}
	if r.Len() != 64 || r.Dropped() != 800-64 {
		t.Fatalf("Len=%d Dropped=%d, want 64/736", r.Len(), r.Dropped())
	}
}

func TestFleetImportOffsetAndDedup(t *testing.T) {
	local := NewClock(None, 16, nil)
	f := NewFleet(16, local)
	local.RecordAt(5, "srv", None, None)

	batch := []Event{
		{TS: 2, Seq: 1, Kind: "cli.a", Round: 1, Client: None},
		{TS: 3, Seq: 2, Kind: "cli.b", Round: 1, Client: None},
	}
	f.Import(7, 1.5, batch) // remote clock behind by 1.5s
	f.Import(7, 1.5, batch) // verbatim re-delivery (telemetry retry)
	evs := f.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3 (dedup failed?): %+v", len(evs), evs)
	}
	// Causal order on the local clock: cli.a@3.5, cli.b@4.5, srv@5.
	if evs[0].Kind != "cli.a" || evs[1].Kind != "cli.b" || evs[2].Kind != "srv" {
		t.Fatalf("wrong causal order: %+v", evs)
	}
	if evs[0].TS != 3.5 || evs[0].Node != 7 {
		t.Fatalf("offset/node not applied: %+v", evs[0])
	}
	if f.Nodes() != 1 {
		t.Fatalf("Nodes = %d, want 1", f.Nodes())
	}
}

func TestFleetNegativeOffsetClampsAtZero(t *testing.T) {
	f := NewFleet(8, nil)
	f.Import(1, -10, []Event{{TS: 2, Seq: 1, Kind: "x"}})
	evs := f.Events()
	if len(evs) != 1 || evs[0].TS != 0 {
		t.Fatalf("negative offset not clamped: %+v", evs)
	}
}

func TestFleetHostileInputsSanitized(t *testing.T) {
	f := NewFleet(8, nil)
	if off := f.ClockOffset(math.NaN()); off != 0 {
		t.Fatalf("ClockOffset(NaN) = %v, want 0", off)
	}
	f.Import(1, math.Inf(1), []Event{{TS: 1, Seq: 1, Kind: "a"}})
	f.Import(2, 0, []Event{{TS: math.NaN(), Seq: 1, Kind: "b"}})
	evs := f.Events()
	if len(evs) != 1 || evs[0].Kind != "a" || evs[0].TS != 1 {
		t.Fatalf("hostile inputs leaked: %+v", evs)
	}
}

func TestFleetImportBounded(t *testing.T) {
	f := NewFleet(4, nil)
	var batch []Event
	for i := 0; i < 10; i++ {
		batch = append(batch, Event{TS: float64(i), Seq: uint64(i + 1), Kind: "e", Round: i})
	}
	f.Import(1, 0, batch)
	evs := f.Events()
	if len(evs) != 4 || f.Dropped() != 6 {
		t.Fatalf("len=%d dropped=%d, want 4/6", len(evs), f.Dropped())
	}
	if evs[0].Round != 6 || evs[3].Round != 9 {
		t.Fatalf("kept wrong tail: %+v", evs)
	}
}

func TestNilFleetIsNop(t *testing.T) {
	var f *Fleet
	f.Import(1, 0, []Event{{Seq: 1}})
	if f.Events() != nil || f.Dropped() != 0 || f.Nodes() != 0 || f.Local() != nil {
		t.Fatal("nil fleet not a nop")
	}
	if f.ClockOffset(5) != 0 {
		t.Fatal("nil fleet ClockOffset != 0")
	}
}

func TestMergeTieBreaksByNodeAndSeq(t *testing.T) {
	a := []Event{{TS: 1, Node: 2, Seq: 1, Kind: "b"}, {TS: 1, Node: 2, Seq: 2, Kind: "c"}}
	b := []Event{{TS: 1, Node: 1, Seq: 9, Kind: "a"}, {TS: 0.5, Node: 3, Seq: 1, Kind: "z"}}
	got := Merge(a, b)
	want := []string{"z", "a", "b", "c"}
	for i, k := range want {
		if got[i].Kind != k {
			t.Fatalf("merge order[%d] = %q, want %q (%+v)", i, got[i].Kind, k, got)
		}
	}
}

func TestFilterMatch(t *testing.T) {
	n, rd, cl := 1, 2, 3
	e := Event{Node: 1, Round: 2, Client: 3, Kind: "exec.heal"}
	cases := []struct {
		q    Filter
		want bool
	}{
		{Filter{}, true},
		{Filter{Node: &n, Round: &rd, Client: &cl}, true},
		{Filter{Kind: "exec.heal"}, true},
		{Filter{Kind: "exec"}, true},    // dotted-prefix match
		{Filter{Kind: "exec.h"}, false}, // not a dot boundary
		{Filter{Kind: "exec.heals"}, false},
		{Filter{Kind: "chaos"}, false},
		{Filter{Round: &cl}, false},
	}
	for i, c := range cases {
		if got := c.q.Match(e); got != c.want {
			t.Fatalf("case %d: Match = %v, want %v (%+v)", i, got, c.want, c.q)
		}
	}
}

func TestApplyLast(t *testing.T) {
	evs := []Event{{Kind: "a"}, {Kind: "b"}, {Kind: "c"}}
	got := Apply(evs, Filter{Last: 2})
	if len(got) != 2 || got[0].Kind != "b" {
		t.Fatalf("Apply Last=2 = %+v", got)
	}
	if got := Tail(evs, 0); len(got) != 3 {
		t.Fatalf("Tail(0) truncated: %+v", got)
	}
}

func TestHandlerFilters(t *testing.T) {
	local := NewClock(None, 16, nil)
	f := NewFleet(16, local)
	local.RecordAt(1, "srv.start", None, None)
	f.Import(1, 0, []Event{
		{TS: 2, Seq: 1, Round: 4, Client: 1, Kind: "push.apply"},
		{TS: 3, Seq: 2, Round: 5, Client: 1, Kind: "push.apply"},
		{TS: 4, Seq: 3, Round: 5, Client: 1, Kind: "net.retry"},
	})
	h := f.Handler()

	get := func(url string) eventsResponse {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d: %s", url, rec.Code, rec.Body.String())
		}
		var resp eventsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
		return resp
	}

	if resp := get("/events"); resp.Count != 4 {
		t.Fatalf("/events count = %d, want 4", resp.Count)
	}
	resp := get("/events?round=5&kind=push.apply")
	if resp.Count != 1 || resp.Events[0].TS != 3 {
		t.Fatalf("round+kind filter = %+v", resp)
	}
	if resp := get("/events?kind=push"); resp.Count != 2 {
		t.Fatalf("prefix kind filter count = %d, want 2", resp.Count)
	}
	if resp := get("/events?node=-1"); resp.Count != 1 || resp.Events[0].Kind != "srv.start" {
		t.Fatalf("node filter = %+v", resp)
	}
	if resp := get("/events?last=2"); resp.Count != 2 || resp.Events[1].Kind != "net.retry" {
		t.Fatalf("last filter = %+v", resp)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/events?round=abc", nil))
	if rec.Code != 400 {
		t.Fatalf("bad round param: status %d, want 400", rec.Code)
	}
}

func TestHandlerNilFleet(t *testing.T) {
	var f *Fleet
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/events", nil))
	if rec.Code != 200 {
		t.Fatalf("nil fleet handler status = %d", rec.Code)
	}
	var resp eventsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Count != 0 {
		t.Fatalf("nil fleet handler body = %s (err %v)", rec.Body.String(), err)
	}
}

func TestTimelineRendering(t *testing.T) {
	evs := []Event{
		{TS: 1.25, Node: 0, Seq: 1, Round: 3, Client: None, Kind: "chaos.inject", Attrs: map[string]string{"mode": "sever", "link": "0->1"}},
		{TS: 2.5, Node: None, Seq: 1, Round: None, Client: 4, Kind: "push.apply"},
	}
	out := Timeline(evs)
	for _, want := range []string{"chaos.inject", "round=3", "link=0->1", "mode=sever", "client=4", "push.apply"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "round=-1") || strings.Contains(out, "client=-1") {
		t.Fatalf("timeline rendered None ids:\n%s", out)
	}
}

func TestCountByKind(t *testing.T) {
	got := CountByKind([]Event{{Kind: "a"}, {Kind: "b"}, {Kind: "a"}})
	if got["a"] != 2 || got["b"] != 1 {
		t.Fatalf("CountByKind = %v", got)
	}
	if CountByKind(nil) != nil {
		t.Fatal("CountByKind(nil) != nil")
	}
}
