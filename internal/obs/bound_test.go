package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// Satellite: the event buffer is bounded. Events past the cap are dropped
// (newest-first) and counted; the Chrome export stays valid.
func TestTraceEventCapDropsAndCounts(t *testing.T) {
	tr := New(nil)
	tr.SetMaxEvents(3)
	for i := 0; i < 5; i++ {
		tr.Span(1, 0, "s", "c", float64(i), float64(i)+0.5, nil)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	// Drop-newest: the first three spans survive, indexes stay stable for
	// EventsFrom high-water-mark readers.
	evs := tr.Events()
	for i, e := range evs {
		if e.Start != float64(i) {
			t.Fatalf("evs[%d].Start = %v, want %v (drop-newest violated)", i, e.Start, float64(i))
		}
	}
	if got := tr.EventsFrom(2); len(got) != 1 || got[0].Start != 2 {
		t.Fatalf("EventsFrom(2) after truncation = %+v", got)
	}

	// The truncated trace still exports as valid Chrome JSON with 3 spans.
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("truncated trace not valid JSON: %v", err)
	}
	spans := 0
	for _, e := range out.TraceEvents {
		if e.Ph == "X" {
			spans++
		}
	}
	if spans != 3 {
		t.Fatalf("exported %d spans, want 3", spans)
	}
}

func TestTraceUnboundedWhenCapZero(t *testing.T) {
	tr := New(nil)
	tr.SetMaxEvents(2)
	tr.SetMaxEvents(0)
	for i := 0; i < 10; i++ {
		tr.Instant(1, 0, "m", "c")
	}
	if tr.Len() != 10 || tr.Dropped() != 0 {
		t.Fatalf("unbounded trace Len=%d Dropped=%d, want 10/0", tr.Len(), tr.Dropped())
	}
	var nilTrace *Trace
	nilTrace.SetMaxEvents(5)
	if nilTrace.Dropped() != 0 {
		t.Fatal("nil trace Dropped != 0")
	}
}

// Satellite: negative clock offsets — the remote clock reads *ahead* of
// ours, so imported timestamps shift backward; starts that would land before
// the local epoch clamp to 0.
func TestImportEventsNegativeOffset(t *testing.T) {
	local := New(nil)
	local.Span(0, 0, "local", "c", 0, 1, nil)

	remote := New(nil)
	remote.Span(9, 0, "late", "c", 100.0, 100.5, nil)
	remote.Span(9, 0, "early", "c", 2.0, 2.5, nil)

	offset := local.ClockOffset(103.0) // local.Now()=0 (clockless) → offset = -103
	if offset != -103.0 {
		t.Fatalf("offset = %v, want -103", offset)
	}
	local.ImportEvents(4, offset, remote.Events())
	evs := local.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	late, early := evs[1], evs[2]
	if late.Start != 0 {
		t.Fatalf("late.Start = %v, want clamp to 0 (100-103 < 0)", late.Start)
	}
	if late.Dur != 0.5 {
		t.Fatalf("late.Dur = %v, want 0.5 untouched by clamp", late.Dur)
	}
	if early.Start != 0 {
		t.Fatalf("early.Start = %v, want clamp to 0", early.Start)
	}
}

func TestImportEventsSanitizesHostileInputs(t *testing.T) {
	tr := New(nil)
	if off := tr.ClockOffset(math.NaN()); off != 0 {
		t.Fatalf("ClockOffset(NaN) = %v, want 0", off)
	}
	if off := tr.ClockOffset(math.Inf(-1)); off != 0 {
		t.Fatalf("ClockOffset(-Inf) = %v, want 0", off)
	}
	tr.ImportEvents(1, math.NaN(), []Event{{Name: "a", Start: 1, Dur: 1}})
	tr.ImportEvents(1, 0, []Event{
		{Name: "bad-start", Start: math.Inf(1), Dur: 1},
		{Name: "bad-dur", Start: 1, Dur: math.NaN()},
		{Name: "neg-dur", Start: 1, Dur: -5},
		{Name: "ok", Start: 2, Dur: 1},
	})
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3 (a, neg-dur, ok): %+v", len(evs), evs)
	}
	if evs[0].Name != "a" || evs[0].Start != 1 {
		t.Fatalf("NaN offset not treated as 0: %+v", evs[0])
	}
	if evs[1].Name != "neg-dur" || evs[1].Dur != 0 {
		t.Fatalf("negative dur not clamped: %+v", evs[1])
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2 non-finite events counted", tr.Dropped())
	}
}

// Satellite: out-of-order batches — later wall-clock spans imported before
// earlier ones still export in sorted order per (pid, tid, start).
func TestImportEventsOutOfOrderBatches(t *testing.T) {
	tr := New(nil)
	tr.ImportEvents(2, 0, []Event{{Name: "second", Start: 5, Dur: 1, TID: 0}})
	tr.ImportEvents(2, 0, []Event{{Name: "first", Start: 1, Dur: 1, TID: 0}})
	tr.ImportEvents(1, 0, []Event{{Name: "other-node", Start: 3, Dur: 1, TID: 0}})

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range out.TraceEvents {
		if e.Ph == "X" {
			names = append(names, e.Name)
		}
	}
	want := []string{"other-node", "first", "second"}
	if len(names) != len(want) {
		t.Fatalf("exported %d spans, want %d", len(names), len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("export order = %v, want %v", names, want)
		}
	}
}
