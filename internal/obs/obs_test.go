package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTraceIsSafeNop(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	sp := tr.Begin(0, 0, "x", "y")
	sp.End()
	tr.Span(0, 0, "a", "b", 0, 1, nil)
	tr.Instant(0, 0, "m", "c")
	tr.SetProcessName(0, "p")
	tr.SetThreadName(0, 0, "t")
	if tr.Len() != 0 || tr.Events() != nil || tr.Now() != 0 {
		t.Fatal("nil trace recorded something")
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("nil trace export invalid: %v", err)
	}
}

func TestVirtualClockSpans(t *testing.T) {
	now := 0.0
	tr := NewVirtual(func() float64 { return now })
	sp := tr.Begin(0, 1, "round", "fl")
	now = 2.5
	sp.EndArgs(map[string]float64{"clients": 4})
	ev := tr.Events()
	if len(ev) != 1 {
		t.Fatalf("events = %d, want 1", len(ev))
	}
	if ev[0].Start != 0 || ev[0].Dur != 2.5 || ev[0].Args["clients"] != 4 {
		t.Fatalf("span = %+v", ev[0])
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	tr := New(nil)
	tr.Span(0, 0, "backwards", "", 5, 3, nil)
	if ev := tr.Events(); ev[0].Dur != 0 {
		t.Fatalf("dur = %v, want 0", ev[0].Dur)
	}
}

func TestWallClockMonotonic(t *testing.T) {
	tr := NewWall()
	a := tr.Now()
	b := tr.Now()
	if b < a || a < 0 {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}

func TestChromeExportShape(t *testing.T) {
	tr := New(nil)
	tr.SetProcessName(1, "portal")
	tr.SetThreadName(1, 0, "stage 0")
	tr.SetThreadName(1, 1, "stage 1")
	tr.Span(1, 0, "F0", "compute", 0, 1, map[string]float64{"micro": 0})
	tr.Span(1, 1, "F0", "compute", 1, 2, nil)
	tr.InstantAt(1, 0, "flush", "sync", 2.25)

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, b.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var meta, spans, instants int
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			spans++
			if e.Dur != 1e6 { // 1 s in µs
				t.Fatalf("span dur = %v µs, want 1e6", e.Dur)
			}
		case "i":
			instants++
			if e.TS != 2.25e6 {
				t.Fatalf("instant ts = %v µs, want 2.25e6", e.TS)
			}
		default:
			t.Fatalf("unexpected ph %q", e.Ph)
		}
	}
	if meta != 3 || spans != 2 || instants != 1 {
		t.Fatalf("meta=%d spans=%d instants=%d, want 3/2/1:\n%s", meta, spans, instants, b.String())
	}
	// Timestamps converted to microseconds.
	if !strings.Contains(b.String(), `"name":"process_name"`) {
		t.Fatalf("missing process_name metadata:\n%s", b.String())
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := NewWall()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Begin(0, g, "work", "test")
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 8*200 {
		t.Fatalf("events = %d, want %d", tr.Len(), 8*200)
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(b.String())) {
		t.Fatal("concurrent trace export is invalid JSON")
	}
}
