package obs

import "math"

// Cross-node trace federation: a fleet server merges span batches shipped by
// remote nodes into one Trace, one process lane (pid) per node, with a
// clock-offset shift so all spans land on the server's clock. The result
// exports as a single fleet-wide Chrome trace.

// EventsFrom returns a copy of the events recorded at index ≥ from — the
// incremental read a telemetry flusher uses to ship only spans it has not
// sent yet (pair with Len to track the high-water mark). A from beyond the
// current length (or a nil trace) yields nil.
func (t *Trace) EventsFrom(from int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(t.events) {
		return nil
	}
	return append([]Event(nil), t.events[from:]...)
}

// ImportEvents appends externally recorded events, rewriting every event's
// pid to the given node lane and shifting its timestamps by offset seconds —
// the receiver-side half of cross-node merging. offset aligns the sender's
// clock with this trace's clock: offset = t.Now() − senderNow, computed when
// the batch arrives (transit time is attributed to the offset, which is the
// best a one-way exchange can do). Tids and args pass through unchanged.
//
// Batches may arrive out of order (retries, interleaved nodes) — events are
// stored as they come and the Chrome exporter sorts by (pid, tid, start), so
// arrival order never corrupts the rendered timeline. Hostile or skewed
// inputs are sanitized rather than imported raw: a non-finite offset is
// treated as 0, events with non-finite timestamps are skipped, negative
// durations are clamped to 0, and a negative shifted start (remote clock
// ahead of ours by more than the event's age) clamps to 0 so no span renders
// before the trace epoch.
func (t *Trace) ImportEvents(pid int, offset float64, evs []Event) {
	if t == nil || len(evs) == 0 {
		return
	}
	if math.IsNaN(offset) || math.IsInf(offset, 0) {
		offset = 0
	}
	t.mu.Lock()
	for _, e := range evs {
		if math.IsNaN(e.Start) || math.IsInf(e.Start, 0) ||
			math.IsNaN(e.Dur) || math.IsInf(e.Dur, 0) {
			t.dropped++
			continue
		}
		e.PID = pid
		e.Start += offset
		if e.Start < 0 {
			e.Start = 0
		}
		if e.Dur < 0 {
			e.Dur = 0
		}
		t.appendLocked(e)
	}
	t.mu.Unlock()
}

// ClockOffset returns the shift that maps a remote clock reading onto this
// trace's clock, given the remote's Now sampled at send time and read here at
// receive time: remoteStart + offset ≈ local time of the same instant. The
// offset is negative whenever the remote clock reads ahead of ours (it
// started earlier), which is as valid as the positive case. A non-finite
// remote reading (hostile wire input) yields 0 instead of poisoning every
// subsequently imported timestamp.
func (t *Trace) ClockOffset(remoteNow float64) float64 {
	if math.IsNaN(remoteNow) || math.IsInf(remoteNow, 0) {
		return 0
	}
	return t.Now() - remoteNow
}
