package obs

// Cross-node trace federation: a fleet server merges span batches shipped by
// remote nodes into one Trace, one process lane (pid) per node, with a
// clock-offset shift so all spans land on the server's clock. The result
// exports as a single fleet-wide Chrome trace.

// EventsFrom returns a copy of the events recorded at index ≥ from — the
// incremental read a telemetry flusher uses to ship only spans it has not
// sent yet (pair with Len to track the high-water mark). A from beyond the
// current length (or a nil trace) yields nil.
func (t *Trace) EventsFrom(from int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(t.events) {
		return nil
	}
	return append([]Event(nil), t.events[from:]...)
}

// ImportEvents appends externally recorded events, rewriting every event's
// pid to the given node lane and shifting its timestamps by offset seconds —
// the receiver-side half of cross-node merging. offset aligns the sender's
// clock with this trace's clock: offset = t.Now() − senderNow, computed when
// the batch arrives (transit time is attributed to the offset, which is the
// best a one-way exchange can do). Tids and args pass through unchanged.
func (t *Trace) ImportEvents(pid int, offset float64, evs []Event) {
	if t == nil || len(evs) == 0 {
		return
	}
	t.mu.Lock()
	for _, e := range evs {
		e.PID = pid
		e.Start += offset
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// ClockOffset returns the shift that maps a remote clock reading onto this
// trace's clock, given the remote's Now sampled at send time and read here at
// receive time: remoteStart + offset ≈ local time of the same instant.
func (t *Trace) ClockOffset(remoteNow float64) float64 {
	return t.Now() - remoteNow
}
