// Package leakcheck is a reusable goroutine-leak assertion for tests that
// start servers, link layers, or executors: capture Baseline() before the
// component under test spins up, shut the component down, then Check() that
// the goroutine count returned to the baseline. The check polls rather than
// sampling once because orderly shutdown is asynchronous — handler goroutines
// observe a closed channel, deferred Closes run, the runtime parks workers —
// so a brief settling window is part of the contract, not slack for bugs.
package leakcheck

import (
	"fmt"
	"runtime"
	"time"
)

// TB is the subset of testing.TB the checker needs; *testing.T and
// *testing.B satisfy it, and tests of the checker itself can substitute a
// recorder.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

const (
	// DefaultSlack tolerates runtime housekeeping goroutines (finalizer,
	// timer, GC workers) that come and go independently of the test.
	DefaultSlack = 2
	// DefaultTimeout bounds how long Check waits for shutdown to settle.
	DefaultTimeout = 3 * time.Second
)

// Baseline returns the current goroutine count. Call it before starting the
// component whose goroutines the test owns.
func Baseline() int { return runtime.NumGoroutine() }

// Check fails t if the goroutine count does not return to baseline (plus
// DefaultSlack) within DefaultTimeout.
func Check(t TB, baseline int) {
	t.Helper()
	CheckWithin(t, baseline, DefaultSlack, DefaultTimeout)
}

// CheckWithin is Check with explicit slack and timeout, for tests whose
// environment legitimately keeps extra goroutines alive (e.g. a shared
// sampler) or that need a longer settling window under -race.
func CheckWithin(t TB, baseline, slack int, timeout time.Duration) {
	t.Helper()
	if err := Wait(baseline, slack, timeout); err != nil {
		t.Fatalf("%v", err)
	}
}

// Wait is the assertion-free core: it polls until the goroutine count drops
// to baseline+slack or the timeout elapses, returning an error on timeout.
// Exposed for callers that want to handle the failure themselves (retry
// loops, TestMain teardown).
func Wait(baseline, slack int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leakcheck: %d goroutines alive after %v, want <= baseline %d + slack %d",
				n, timeout, baseline, slack)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
