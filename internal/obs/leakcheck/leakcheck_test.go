package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// recorder captures Fatalf calls without aborting the test goroutine.
type recorder struct {
	failed bool
	msg    string
}

func (r *recorder) Helper() {}
func (r *recorder) Fatalf(format string, args ...any) {
	r.failed = true
	r.msg = format
	_ = args
}

func TestCheckPassesWhenNothingLeaks(t *testing.T) {
	base := Baseline()
	done := make(chan struct{})
	go func() { <-done }()
	close(done)
	Check(t, base) // fails the test itself on a leak
}

func TestCheckWaitsForLateShutdown(t *testing.T) {
	base := Baseline()
	release := make(chan struct{})
	go func() { <-release }()
	// The goroutine is still alive when Check starts; it exits mid-poll.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	CheckWithin(t, base, 0, 2*time.Second)
}

// settle waits for goroutines left over from earlier tests to exit, so a
// freshly captured baseline is not inflated by someone else's shutdown.
func settle(t *testing.T) int {
	t.Helper()
	prev := Baseline()
	for i := 0; i < 100; i++ {
		time.Sleep(10 * time.Millisecond)
		cur := Baseline()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

func TestCheckFailsOnLeak(t *testing.T) {
	base := settle(t)
	release := make(chan struct{})
	defer close(release)
	for i := 0; i < DefaultSlack+2; i++ {
		go func() { <-release }()
	}
	rec := &recorder{}
	CheckWithin(rec, base, DefaultSlack, 100*time.Millisecond)
	if !rec.failed {
		t.Fatal("leak went undetected")
	}
}

func TestWaitErrorNamesCounts(t *testing.T) {
	base := settle(t)
	release := make(chan struct{})
	defer close(release)
	for i := 0; i < 4; i++ {
		go func() { <-release }()
	}
	err := Wait(base, 0, 50*time.Millisecond)
	if err == nil {
		t.Fatal("want timeout error")
	}
	if !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("error should name the baseline: %v", err)
	}
}
