// Package obs records spans and instant events on named timelines and
// exports them as Chrome trace-event JSON (the catapult format understood by
// chrome://tracing and https://ui.perfetto.dev), so a pipeline sync-round or
// an FL run renders as a real per-device timeline.
//
// Two clocks are supported: wall time (NewWall), for the live goroutine
// pipeline and the TCP daemons, and an arbitrary virtual clock (NewVirtual),
// for the discrete-event simulations — spans can also be emitted with
// explicit start/end timestamps, bypassing the clock entirely.
//
// A nil *Trace is the nop recorder: every method is a cheap early return
// (no time.Now call, no allocation, no lock), so instrumented hot loops pay
// ~0 ns when tracing is disabled. Instrumentation therefore always calls
// through the possibly-nil pointer rather than branching itself.
package obs

import (
	"sync"
	"time"
)

// DefaultMaxEvents bounds a Trace's event buffer unless SetMaxEvents says
// otherwise. Long chaos soaks record spans for hours; an unbounded buffer
// turns them into a slow OOM. At ~100 B/event this default caps a trace near
// 25 MB; events past the cap are counted in Dropped rather than stored
// (drop-newest, so EventsFrom high-water-mark shipping keeps stable indexes).
const DefaultMaxEvents = 1 << 18

// Event is one recorded trace event. Timestamps are in the trace's clock
// units (seconds); the Chrome exporter converts to microseconds.
type Event struct {
	Name  string
	Cat   string
	Start float64
	Dur   float64 // 0 for instant events
	PID   int
	TID   int
	// Args are optional numeric annotations (micro-batch index, bytes, …).
	Args map[string]float64
	// Instant marks a zero-duration marker event (ph "i" in Chrome format).
	Instant bool
}

// Trace is a concurrency-safe span/event recorder. Create with NewWall or
// NewVirtual; a nil *Trace discards everything at ~0 cost.
type Trace struct {
	clock func() float64

	mu        sync.Mutex
	events    []Event
	max       int // 0 = unbounded
	dropped   uint64
	procNames map[int]string
	threads   map[[2]int]string
}

// NewWall returns a recorder stamping events with wall-clock seconds
// relative to its creation.
func NewWall() *Trace {
	t0 := time.Now()
	return New(func() float64 { return time.Since(t0).Seconds() })
}

// NewVirtual returns a recorder whose Now is the given virtual clock (e.g. a
// sim.Engine's Now).
func NewVirtual(now func() float64) *Trace { return New(now) }

// New returns a recorder over an arbitrary clock. A nil clock is valid when
// every event carries explicit timestamps (Span/InstantAt).
func New(clock func() float64) *Trace {
	return &Trace{
		clock:     clock,
		max:       DefaultMaxEvents,
		procNames: make(map[int]string),
		threads:   make(map[[2]int]string),
	}
}

// SetMaxEvents caps the event buffer at n events; n <= 0 removes the bound.
// Once full, new events are dropped (newest-first) and counted in Dropped —
// drop-newest keeps indexes stable for EventsFrom incremental shipping, and
// the Chrome export stays valid because stored events are never mutated.
func (t *Trace) SetMaxEvents(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if n < 0 {
		n = 0
	}
	t.max = n
	t.mu.Unlock()
}

// Dropped reports how many events were discarded after the buffer filled.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// appendLocked stores e unless the cap is reached; callers hold t.mu.
func (t *Trace) appendLocked(e Event) {
	if t.max > 0 && len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Enabled reports whether events are being recorded.
func (t *Trace) Enabled() bool { return t != nil }

// Now returns the recorder's current clock reading (0 when nil or clockless).
func (t *Trace) Now() float64 {
	if t == nil || t.clock == nil {
		return 0
	}
	return t.clock()
}

// SetProcessName labels a pid lane in the exported trace.
func (t *Trace) SetProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.procNames[pid] = name
	t.mu.Unlock()
}

// SetThreadName labels a (pid, tid) track in the exported trace.
func (t *Trace) SetThreadName(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[[2]int{pid, tid}] = name
	t.mu.Unlock()
}

// Span records a complete span with explicit start/end timestamps — the
// entry point for virtual-time schedules, where the clock never ticks on its
// own. Negative durations are clamped to 0.
func (t *Trace) Span(pid, tid int, name, cat string, start, end float64, args map[string]float64) {
	if t == nil {
		return
	}
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	t.appendLocked(Event{
		Name: name, Cat: cat, Start: start, Dur: dur, PID: pid, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// InstantAt records a zero-duration marker at an explicit timestamp.
func (t *Trace) InstantAt(pid, tid int, name, cat string, at float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.appendLocked(Event{Name: name, Cat: cat, Start: at, PID: pid, TID: tid, Instant: true})
	t.mu.Unlock()
}

// Instant records a marker at the current clock reading.
func (t *Trace) Instant(pid, tid int, name, cat string) {
	if t == nil {
		return
	}
	t.InstantAt(pid, tid, name, cat, t.Now())
}

// Span handle for clock-driven begin/end recording.
type Span struct {
	t     *Trace
	pid   int
	tid   int
	name  string
	cat   string
	start float64
}

// Begin opens a span at the current clock reading. On a nil Trace it returns
// a zero Span whose End is a no-op — callers never branch.
func (t *Trace) Begin(pid, tid int, name, cat string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, pid: pid, tid: tid, name: name, cat: cat, start: t.Now()}
}

// End closes the span at the current clock reading.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs closes the span attaching numeric annotations.
func (s Span) EndArgs(args map[string]float64) {
	if s.t == nil {
		return
	}
	s.t.Span(s.pid, s.tid, s.name, s.cat, s.start, s.t.Now(), args)
}

// EndMicro closes the span attaching a micro-batch index. The args map is
// only allocated when the span is live, keeping nop-recorder call sites
// allocation-free.
func (s Span) EndMicro(micro int) {
	if s.t == nil {
		return
	}
	s.EndArgs(map[string]float64{"micro": float64(micro)})
}

// Len returns the number of recorded events (metadata excluded).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in recording order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}
