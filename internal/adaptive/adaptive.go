// Package adaptive implements Eco-FL's runtime pipeline re-scheduling
// (§4.4): training workers report per-stage execution times to the portal
// node; when a stage's current time deviates from its history beyond a
// threshold, the portal re-runs the heterogeneity-aware partitioner on the
// updated device rates, migrates layer weights to their new stages, and
// restarts the pipeline (Fig. 6). The SpikeExperiment type regenerates the
// Fig. 13 timeline: an external load spike with and without the scheduler.
package adaptive

import (
	"errors"
	"fmt"
	"math"

	"ecofl/internal/device"
	"ecofl/internal/model"
	"ecofl/internal/partition"
	"ecofl/internal/pipeline"
)

// Monitor detects execution-time deviations per stage. Workers report the
// measured per-micro-batch execution time of their stage; the monitor keeps
// an exponential moving average as "history" and flags a stage whose
// current report deviates relatively by more than Threshold.
type Monitor struct {
	// Threshold is the relative deviation |cur−hist|/hist that triggers
	// re-scheduling. The zero value defaults to 0.25.
	Threshold float64
	// Alpha is the EMA smoothing factor (default 0.3).
	Alpha   float64
	history []float64
}

// Report records a measurement for stage s and reports whether the
// deviation from history exceeds the threshold.
func (m *Monitor) Report(s int, execTime float64) bool {
	dev, _ := m.Check(s, execTime)
	return dev > m.Threshold
}

// Check is the deviation rule itself, shared with the fleet straggler
// detector (internal/flnet): it records a measurement for key s, folds it
// into the EMA history, and returns the relative deviation |cur−hist|/hist
// from the pre-update history plus whether the measurement was slower than
// history (deviating *fast* is not straggling). The first measurement for a
// key seeds the history and reports zero deviation.
func (m *Monitor) Check(s int, execTime float64) (dev float64, slower bool) {
	if m.Threshold == 0 {
		m.Threshold = 0.25
	}
	if m.Alpha == 0 {
		m.Alpha = 0.3
	}
	// Hostile or warm-up inputs never trigger: a negative key (an unmapped
	// stage after a migration) and non-positive measurements (a clock
	// hiccup, an idle probe) carry no deviation signal.
	if s < 0 || execTime <= 0 {
		return 0, false
	}
	for len(m.history) <= s {
		m.history = append(m.history, 0)
	}
	if m.history[s] == 0 {
		m.history[s] = execTime
		return 0, false
	}
	dev = math.Abs(execTime-m.history[s]) / m.history[s]
	slower = execTime > m.history[s]
	m.history[s] = (1-m.Alpha)*m.history[s] + m.Alpha*execTime
	return dev, slower
}

// Exceeds reports whether a deviation returned by Check crosses the
// monitor's (defaulted) threshold.
func (m *Monitor) Exceeds(dev float64) bool {
	if m.Threshold == 0 {
		m.Threshold = 0.25
	}
	return dev > m.Threshold
}

// History returns the smoothed execution time for stage s (0 if unseen).
func (m *Monitor) History(s int) float64 {
	if s >= 0 && s < len(m.history) {
		return m.history[s]
	}
	return 0
}

// Forget clears the history for key s. After a migration the workload
// behind a key changes (the device runs different layers), so its history
// no longer predicts anything: the next measurement re-seeds it.
func (m *Monitor) Forget(s int) {
	if s >= 0 && s < len(m.history) {
		m.history[s] = 0
	}
}

// MigrationPlan describes moving from one stage layout to another.
type MigrationPlan struct {
	Old, New []pipeline.Stage
	// MovedParamBytes is the total parameter volume that changes device.
	MovedParamBytes float64
	// MigrationTime is the transfer plus restart cost; training throughput
	// is zero during this window (Fig. 13's "Workload Migration & Pipeline
	// Restart").
	MigrationTime float64
}

// PlanMigration computes the data movement needed to go from the old to the
// new layout. Every layer whose owning device changes must ship its
// parameters across the (slowest) link; devices migrate concurrently, so the
// time is the largest per-device outbound volume over its link bandwidth,
// plus a fixed restart overhead.
func PlanMigration(spec *model.Spec, old, new []pipeline.Stage, restartOverhead float64) (*MigrationPlan, error) {
	ownerOf := func(stages []pipeline.Stage, layer int) *device.Device {
		for _, s := range stages {
			if layer >= s.From && layer < s.To {
				return s.Device
			}
		}
		return nil
	}
	outbound := map[*device.Device]float64{}
	var moved float64
	for l := 0; l < spec.NumLayers(); l++ {
		from := ownerOf(old, l)
		to := ownerOf(new, l)
		if from == nil || to == nil {
			return nil, fmt.Errorf("adaptive: layer %d not covered by both layouts", l)
		}
		if from.Name != to.Name || from != to {
			w := spec.SegmentParamBytes(l, l+1)
			moved += w
			outbound[from] += w
		}
	}
	var worst float64
	for d, bytes := range outbound {
		if t := bytes / d.LinkBandwidth; t > worst {
			worst = t
		}
	}
	return &MigrationPlan{
		Old:             old,
		New:             new,
		MovedParamBytes: moved,
		MigrationTime:   worst + restartOverhead,
	}, nil
}

// Reschedule re-runs the partitioner on the devices' current effective
// rates, keeping the device order fixed (migration reorders workload, not
// hardware), and returns the migration plan plus the new schedule. If the
// new layout does not fit at the requested micro-batch size (a migration
// can move large-activation layers onto a small device), the micro-batch
// size is halved until the pipeline fits (§4.3's fallback).
func Reschedule(spec *model.Spec, current []pipeline.Stage, mbs, m int, restartOverhead float64) (*MigrationPlan, *pipeline.Result, error) {
	devs := make([]*device.Device, len(current))
	for i, s := range current {
		devs[i] = s.Device
	}
	var lastErr error
	for tryMbs := mbs; tryMbs >= 1; tryMbs /= 2 {
		plan, err := partition.DynamicProgrammingBatch(spec, devs, tryMbs)
		if err != nil {
			return nil, nil, err
		}
		cfg := &pipeline.Config{Spec: spec, Stages: plan.Stages, MicroBatchSize: tryMbs, NumMicroBatches: m}
		res, err := pipeline.Schedule(cfg)
		if err != nil {
			if errors.Is(err, pipeline.ErrOOM) {
				lastErr = err
				continue
			}
			return nil, nil, err
		}
		mig, err := PlanMigration(spec, current, plan.Stages, restartOverhead)
		if err != nil {
			return nil, nil, err
		}
		return mig, res, nil
	}
	return nil, nil, lastErr
}

// ---------------------------------------------------------------- Fig. 13

// SpikeExperiment reproduces the Fig. 13 scenario: a pipeline trains
// steadily until an external GPU workload hits one device; we track
// per-device utilization and pipeline throughput with and without the
// adaptive scheduler.
type SpikeExperiment struct {
	Spec            *model.Spec
	Devices         []*device.Device
	MicroBatchSize  int
	NumMicroBatches int
	// SpikeTime is when the external load arrives; SpikeDevice indexes
	// Devices; SpikeLoadFactor is the training share left (e.g. 0.3).
	SpikeTime       float64
	SpikeDevice     int
	SpikeLoadFactor float64
	// DetectDelay is how long after the spike the portal reacts (workers
	// report periodically); RestartOverhead is the fixed pipeline restart
	// cost added to migration.
	DetectDelay     float64
	RestartOverhead float64
	Duration        float64
	SampleInterval  float64
}

// Sample is one timeline point of the experiment.
type Sample struct {
	Time       float64
	Throughput float64
	// DeviceUtil is each device's total busy fraction, training plus
	// external load — what a GPU utilization probe would show.
	DeviceUtil []float64
}

// Timeline is the Fig. 13 output series.
type Timeline struct {
	Samples []Sample
	// MigrationStart/End bracket the workload-migration window (zero if
	// the scheduler was disabled or never triggered).
	MigrationStart, MigrationEnd float64
}

// Run executes the experiment. withScheduler selects the adaptive path.
func (e *SpikeExperiment) Run(withScheduler bool) (*Timeline, error) {
	if e.SampleInterval <= 0 || e.Duration <= 0 {
		return nil, errors.New("adaptive: need positive Duration and SampleInterval")
	}
	if e.SpikeDevice < 0 || e.SpikeDevice >= len(e.Devices) {
		return nil, fmt.Errorf("adaptive: spike device %d out of range", e.SpikeDevice)
	}
	devs := device.CloneAll(e.Devices)
	plan, err := partition.DynamicProgrammingBatch(e.Spec, devs, e.MicroBatchSize)
	if err != nil {
		return nil, err
	}
	schedule := func(stages []pipeline.Stage) (*pipeline.Result, error) {
		cfg := &pipeline.Config{Spec: e.Spec, Stages: stages, MicroBatchSize: e.MicroBatchSize, NumMicroBatches: e.NumMicroBatches}
		return pipeline.Schedule(cfg)
	}
	before, err := schedule(plan.Stages)
	if err != nil {
		return nil, err
	}

	// Apply the spike and compute the degraded (unmigrated) operating point.
	devs[e.SpikeDevice].LoadFactor = e.SpikeLoadFactor
	degraded, err := schedule(plan.Stages)
	if err != nil {
		return nil, err
	}

	var mig *MigrationPlan
	var after *pipeline.Result
	tl := &Timeline{}
	if withScheduler {
		mig, after, err = Reschedule(e.Spec, plan.Stages, e.MicroBatchSize, e.NumMicroBatches, e.RestartOverhead)
		if err != nil {
			return nil, err
		}
		tl.MigrationStart = e.SpikeTime + e.DetectDelay
		tl.MigrationEnd = tl.MigrationStart + mig.MigrationTime
	}

	utilAt := func(res *pipeline.Result, spiked bool) []float64 {
		out := make([]float64, len(devs))
		for s, st := range res.Config.Stages {
			// Map the stage back to its device position in e.Devices.
			for d := range devs {
				if st.Device == devs[d] {
					out[d] = res.StageUtil[s]
				}
			}
		}
		if spiked {
			ext := 1 - e.SpikeLoadFactor
			out[e.SpikeDevice] = math.Min(1, out[e.SpikeDevice]*e.SpikeLoadFactor+ext)
		}
		return out
	}

	for t := 0.0; t <= e.Duration; t += e.SampleInterval {
		var s Sample
		s.Time = t
		switch {
		case t < e.SpikeTime:
			s.Throughput = before.Throughput
			s.DeviceUtil = utilAt(before, false)
		case withScheduler && t >= tl.MigrationStart && t < tl.MigrationEnd:
			s.Throughput = 0 // pipeline paused for migration + restart
			s.DeviceUtil = utilAt(degraded, true)
			for d := range s.DeviceUtil {
				if d != e.SpikeDevice {
					s.DeviceUtil[d] = 0
				} else {
					s.DeviceUtil[d] = 1 - e.SpikeLoadFactor
				}
			}
		case withScheduler && t >= tl.MigrationEnd:
			s.Throughput = after.Throughput
			s.DeviceUtil = utilAt(after, true)
		default:
			s.Throughput = degraded.Throughput
			s.DeviceUtil = utilAt(degraded, true)
		}
		tl.Samples = append(tl.Samples, s)
	}
	return tl, nil
}
