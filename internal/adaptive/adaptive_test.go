package adaptive

import (
	"testing"

	"ecofl/internal/device"
	"ecofl/internal/model"
	"ecofl/internal/partition"
	"ecofl/internal/pipeline"
)

func TestMonitorDetectsDeviation(t *testing.T) {
	var m Monitor
	if m.Report(0, 1.0) {
		t.Fatal("first report establishes history, no trigger")
	}
	if m.Report(0, 1.05) {
		t.Fatal("5% deviation below default threshold must not trigger")
	}
	if !m.Report(0, 2.0) {
		t.Fatal("~90% deviation must trigger")
	}
	if m.History(0) <= 1.0 {
		t.Fatal("EMA must move toward recent reports")
	}
	if m.History(5) != 0 {
		t.Fatal("unknown stage history must be 0")
	}
}

func TestMonitorCheckDirectionAndDeviation(t *testing.T) {
	var m Monitor
	if dev, slower := m.Check(0, 1.0); dev != 0 || slower {
		t.Fatalf("first check seeds history, got dev=%v slower=%v", dev, slower)
	}
	// Slower than history: positive deviation, slower=true.
	dev, slower := m.Check(0, 2.0)
	if !slower || dev < 0.99 || dev > 1.01 {
		t.Fatalf("2.0 vs history 1.0: dev=%v slower=%v, want ~1.0/true", dev, slower)
	}
	if !m.Exceeds(dev) {
		t.Fatal("100% deviation must exceed the default threshold")
	}
	// Faster than the (now EMA-raised) history: deviating but not slower.
	dev, slower = m.Check(0, 0.1)
	if slower {
		t.Fatal("0.1 against raised history must not read as slower")
	}
	if !m.Exceeds(dev) {
		t.Fatalf("large fast deviation %v must still exceed the threshold", dev)
	}
	if m.Exceeds(0.1) {
		t.Fatal("10% is below the default 25% threshold")
	}
}

func TestMonitorPerStageIsolation(t *testing.T) {
	var m Monitor
	m.Report(0, 1.0)
	m.Report(1, 4.0)
	if m.Report(1, 4.1) {
		t.Fatal("stage 1 stable, must not trigger")
	}
	if !m.Report(0, 3.0) {
		t.Fatal("stage 0 spiked, must trigger")
	}
}

func spikeExperiment() *SpikeExperiment {
	return &SpikeExperiment{
		Spec:            model.EfficientNet(4),
		Devices:         []*device.Device{device.NanoH(), device.TX2Q(), device.NanoH()},
		MicroBatchSize:  8,
		NumMicroBatches: 8,
		SpikeTime:       100,
		SpikeDevice:     1,
		SpikeLoadFactor: 0.35,
		DetectDelay:     5,
		RestartOverhead: 2,
		Duration:        200,
		SampleInterval:  1,
	}
}

func TestPlanMigrationMovesChangedLayersOnly(t *testing.T) {
	spec := model.EfficientNet(1)
	devs := []*device.Device{device.TX2Q(), device.NanoH()}
	plan, err := partition.DynamicProgramming(spec, devs)
	if err != nil {
		t.Fatal(err)
	}
	// Identity migration: nothing moves.
	mig, err := PlanMigration(spec, plan.Stages, plan.Stages, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mig.MovedParamBytes != 0 {
		t.Fatalf("identity migration moved %v bytes", mig.MovedParamBytes)
	}
	if mig.MigrationTime != 2 {
		t.Fatalf("identity migration time should be restart overhead only, got %v", mig.MigrationTime)
	}
	// Shift the cut by two layers: exactly those layers' params move.
	shifted := []pipeline.Stage{
		{Device: devs[0], From: 0, To: plan.Stages[0].To - 2},
		{Device: devs[1], From: plan.Stages[0].To - 2, To: spec.NumLayers()},
	}
	mig2, err := PlanMigration(spec, plan.Stages, shifted, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := spec.SegmentParamBytes(plan.Stages[0].To-2, plan.Stages[0].To)
	if mig2.MovedParamBytes != want {
		t.Fatalf("moved %v bytes, want %v", mig2.MovedParamBytes, want)
	}
	if mig2.MigrationTime <= 0 {
		t.Fatal("moving layers must take time")
	}
}

func TestRescheduleRebalancesAfterSlowdown(t *testing.T) {
	spec := model.EfficientNet(4)
	devs := []*device.Device{device.NanoH(), device.TX2Q(), device.NanoH()}
	plan, err := partition.DynamicProgramming(spec, devs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &pipeline.Config{Spec: spec, Stages: plan.Stages, MicroBatchSize: 8, NumMicroBatches: 8}
	healthy, err := pipeline.Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Slow down the middle device 3×.
	devs[1].LoadFactor = 0.33
	degraded, err := pipeline.Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mig, rebalanced, err := Reschedule(spec, plan.Stages, 8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mig.MovedParamBytes <= 0 {
		t.Fatal("rescheduling after a 3× slowdown should move layers")
	}
	if rebalanced.Throughput <= degraded.Throughput {
		t.Fatalf("migration must recover throughput: %v → %v", degraded.Throughput, rebalanced.Throughput)
	}
	if rebalanced.Throughput > healthy.Throughput {
		t.Fatalf("rebalanced (%v) cannot exceed the healthy pipeline (%v)", rebalanced.Throughput, healthy.Throughput)
	}
}

func TestSpikeTimelineShapes(t *testing.T) {
	e := spikeExperiment()
	with, err := e.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	without, err := e.Run(false)
	if err != nil {
		t.Fatal(err)
	}

	thAt := func(tl *Timeline, time float64) float64 {
		var last float64
		for _, s := range tl.Samples {
			if s.Time > time {
				break
			}
			last = s.Throughput
		}
		return last
	}
	before := thAt(without, 50)
	afterNoSched := thAt(without, 190)
	if afterNoSched >= before {
		t.Fatalf("spike must degrade throughput without scheduler: %v → %v", before, afterNoSched)
	}
	afterSched := thAt(with, 190)
	if afterSched <= afterNoSched {
		t.Fatalf("scheduler must recover throughput: %v vs %v", afterSched, afterNoSched)
	}
	if afterSched > before {
		t.Fatalf("recovered throughput (%v) cannot exceed pre-spike (%v)", afterSched, before)
	}
	// During migration throughput is zero.
	mid := (with.MigrationStart + with.MigrationEnd) / 2
	if thAt(with, mid) != 0 {
		t.Fatal("throughput must be zero during migration/restart")
	}
	if with.MigrationStart < e.SpikeTime {
		t.Fatal("migration cannot start before the spike is detected")
	}
	// The spiked device shows high total utilization after the spike.
	for _, s := range without.Samples {
		if s.Time > e.SpikeTime+1 {
			if s.DeviceUtil[e.SpikeDevice] < 1-e.SpikeLoadFactor {
				t.Fatal("spiked device utilization must include external load")
			}
			break
		}
	}
}

func TestSpikeExperimentValidation(t *testing.T) {
	e := spikeExperiment()
	e.SampleInterval = 0
	if _, err := e.Run(true); err == nil {
		t.Fatal("zero sample interval must error")
	}
	e = spikeExperiment()
	e.SpikeDevice = 9
	if _, err := e.Run(true); err == nil {
		t.Fatal("out-of-range spike device must error")
	}
}

func TestRescheduleFallsBackToSmallerMicroBatch(t *testing.T) {
	spec := model.EfficientNet(6)
	// Tight-memory devices: a migration at mbs=32 cannot fit, the
	// scheduler must fall back to a smaller micro-batch instead of failing.
	tight := func(rate float64) *device.Device {
		d := device.NanoH()
		d.ComputeRate = rate
		d.MemoryBytes = int64(1.2e9)
		return d
	}
	devs := []*device.Device{tight(300e9), tight(150e9)}
	plan, err := partition.DynamicProgrammingBatch(spec, devs, 8)
	if err != nil {
		t.Fatal(err)
	}
	devs[0].LoadFactor = 0.4
	mig, res, err := Reschedule(spec, plan.Stages, 32, 8, 1)
	if err != nil {
		t.Fatalf("fallback should find a feasible micro-batch: %v", err)
	}
	if res.Config.MicroBatchSize >= 32 {
		t.Fatalf("expected a reduced micro-batch, got %d", res.Config.MicroBatchSize)
	}
	if mig == nil || res.Throughput <= 0 {
		t.Fatal("fallback must produce a usable schedule")
	}
}

func TestMonitorHostileAndWarmupInputs(t *testing.T) {
	m := &Monitor{}
	// Negative keys (an unmapped stage after a migration) and non-positive
	// measurements carry no signal and must never trigger or panic.
	if dev, slower := m.Check(-1, 0.5); dev != 0 || slower {
		t.Fatalf("negative key triggered: dev=%v slower=%v", dev, slower)
	}
	if dev, slower := m.Check(2, 0); dev != 0 || slower {
		t.Fatalf("zero measurement triggered: dev=%v slower=%v", dev, slower)
	}
	if dev, slower := m.Check(2, -3); dev != 0 || slower {
		t.Fatalf("negative measurement triggered: dev=%v slower=%v", dev, slower)
	}
	if h := m.History(-1); h != 0 {
		t.Fatalf("negative key has history %v", h)
	}
	m.Forget(-1) // must not panic
	// The first real measurement only seeds the history.
	if dev, slower := m.Check(2, 0.5); dev != 0 || slower {
		t.Fatalf("warm-up measurement triggered: dev=%v slower=%v", dev, slower)
	}
	if h := m.History(2); h != 0.5 {
		t.Fatalf("history not seeded: %v", h)
	}
}

func TestMonitorForgetReseeds(t *testing.T) {
	m := &Monitor{}
	m.Check(0, 1.0)
	if dev, _ := m.Check(0, 2.0); dev != 1.0 {
		t.Fatalf("deviation before forget: %v", dev)
	}
	// After a migration the key's workload changed: Forget voids the
	// history so the next measurement re-seeds instead of deviating.
	m.Forget(0)
	if h := m.History(0); h != 0 {
		t.Fatalf("history survived Forget: %v", h)
	}
	if dev, slower := m.Check(0, 5.0); dev != 0 || slower {
		t.Fatalf("re-seed measurement triggered: dev=%v slower=%v", dev, slower)
	}
}
