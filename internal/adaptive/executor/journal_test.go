package executor

// Flight-recorder coverage for the heal state machine: the journal must
// capture detect → abort → repartition → ship → resume in causal order, with
// injected chaos faults logging their cause into the same timeline.

import (
	"math/rand"
	"testing"
	"time"

	"ecofl/internal/model"
	"ecofl/internal/nn"
	"ecofl/internal/obs/journal"
	"ecofl/internal/pipeline/runtime"
)

// kindIndexAfter returns the index of the first event of the given kind at or
// after from, or -1.
func kindIndexAfter(evs []journal.Event, kind string, from int) int {
	for i := from; i < len(evs); i++ {
		if evs[i].Kind == kind {
			return i
		}
	}
	return -1
}

// assertHealOrder walks the journal from the first exec.kill and requires the
// §4.4 state machine's steps to appear after it, in order: detection, abort,
// repartition, segment shipping, resume, and the replayed round's commit.
func assertHealOrder(t *testing.T, evs []journal.Event) {
	t.Helper()
	at := kindIndexAfter(evs, "exec.kill", 0)
	if at < 0 {
		t.Fatalf("no exec.kill event in journal:\n%s", journal.Timeline(evs))
	}
	for _, kind := range []string{
		"exec.detect", "exec.abort", "exec.repartition",
		"exec.ship-segment", "exec.resume", "exec.round-commit",
	} {
		next := kindIndexAfter(evs, kind, at+1)
		if next < 0 {
			t.Fatalf("no %s event after index %d (%s):\n%s", kind, at, evs[at].Kind, journal.Timeline(evs))
		}
		at = next
	}
}

// TestJournalHealTimeline kills a mid-fleet device and asserts the flight
// recorder holds the full heal sequence in causal order, correlated to the
// aborted round.
func TestJournalHealTimeline(t *testing.T) {
	const seed, mbs, rounds, lr = 42, 6, 3, 0.05
	rng := rand.New(rand.NewSource(7))
	x, labels := makeData(rng, 24, 12, 4)

	rec := journal.New(0, 512)
	tr := model.NewTrainableMLP(rand.New(rand.NewSource(seed)), "ref", 12, []int{14, 12, 10}, 4)
	exec, err := New(Config{
		Trainable:      tr,
		Devices:        fleet(),
		MicroBatchSize: mbs,
		LinkOptions:    runtime.LinkOptions{RecvTimeout: 2 * time.Second, DialRetries: 2},
		Journal:        rec,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	exec.ScheduleKill(1, 1)
	opt := &nn.SGD{LR: lr}
	for r := 0; r < rounds; r++ {
		if _, err := exec.TrainRound(x, labels, opt); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}

	evs := rec.Events()
	assertHealOrder(t, evs)

	// Every event is on node 0 and the kill correlates to the doomed round
	// and the killed device.
	killIdx := kindIndexAfter(evs, "exec.kill", 0)
	if k := evs[killIdx]; k.Round != 1 || k.Client != 1 {
		t.Fatalf("exec.kill uncorrelated: %+v", k)
	}
	// The replayed round commits under the same round id it aborted under.
	detIdx := kindIndexAfter(evs, "exec.detect", killIdx)
	comIdx := kindIndexAfter(evs, "exec.round-commit", detIdx)
	if evs[comIdx].Round != evs[detIdx].Round {
		t.Fatalf("replayed commit round %d != aborted round %d:\n%s",
			evs[comIdx].Round, evs[detIdx].Round, journal.Timeline(evs))
	}
	// One committed round per training round, each with a loss attr.
	commits := 0
	for _, e := range evs {
		if e.Kind == "exec.round-commit" {
			if e.Attrs["loss"] == "" {
				t.Fatalf("round-commit without loss attr: %+v", e)
			}
			commits++
		}
	}
	if commits != rounds {
		t.Fatalf("%d exec.round-commit events, want %d:\n%s", commits, rounds, journal.Timeline(evs))
	}

	var tsvec []float64
	for _, e := range evs {
		tsvec = append(tsvec, e.TS)
	}
	for i := 1; i < len(tsvec); i++ {
		if tsvec[i] < tsvec[i-1] {
			t.Fatalf("journal timestamps regress at %d:\n%s", i, journal.Timeline(evs))
		}
	}

	var seg *journal.Event
	for i := range evs {
		if evs[i].Kind == "exec.ship-segment" {
			seg = &evs[i]
			break
		}
	}
	if seg.Attrs["bytes"] == "" || seg.Attrs["from"] == "" || seg.Attrs["to"] == "" {
		t.Fatalf("ship-segment missing migration attrs: %+v", seg)
	}
}
