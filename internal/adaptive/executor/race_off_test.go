//go:build !race

package executor

const raceEnabled = false
