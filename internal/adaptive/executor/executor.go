// Package executor turns adaptive's analytical migration plans into
// executed recovery on the live distributed pipeline. Where
// adaptive.Reschedule computes what *should* move, the Executor makes it
// happen: it trains through runtime.DistPipeline, watches for link faults,
// dead stage devices and measured slowdowns (the adaptive.Monitor deviation
// rule over real per-stage step times), and on trouble runs the paper's
// §4.4 state machine for real —
//
//	detect → abort round → re-partition survivors → ship weights → resume
//
// Weights only ever commit at round boundaries (runtime's abort guarantee),
// so an aborted round can be replayed on the healed pipeline and the model
// stays bit-identical to a fault-free run on the same final partition. The
// migration itself is executed, not simulated: every moved weight segment
// is gob-serialized, crosses a fresh net.Conn, and is installed on the
// receiving side, with bytes and wall time measured against the analytical
// plan (adaptive.PlanMigration).
package executor

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"ecofl/internal/adaptive"
	"ecofl/internal/device"
	"ecofl/internal/flnet"
	"ecofl/internal/metrics"
	"ecofl/internal/model"
	"ecofl/internal/nn"
	"ecofl/internal/obs"
	"ecofl/internal/obs/journal"
	"ecofl/internal/partition"
	"ecofl/internal/pipeline"
	"ecofl/internal/pipeline/runtime"
	"ecofl/internal/simnet"
	"ecofl/internal/tensor"
)

var (
	healsTotal = metrics.GetCounter("ecofl_executor_heals_total",
		"abort→repartition→resume cycles executed by the healing executor")
	migrationsTotal = metrics.GetCounter("ecofl_executor_migrations_total",
		"executed migrations (weight segments shipped over links)")
	migratedBytesTotal = metrics.GetCounter("ecofl_executor_migrated_bytes_total",
		"weight bytes shipped during executed migrations")
	detectSeconds = metrics.GetHistogram("ecofl_executor_detect_seconds",
		"fault occurrence to full round unwind", nil)
	migrationSeconds = metrics.GetHistogram("ecofl_executor_migration_seconds",
		"executed migration duration (weight shipping + pipeline rebuild)", nil)
)

// ErrNoSurvivors is returned when every pipeline device has been killed.
var ErrNoSurvivors = errors.New("executor: no surviving devices")

// Config describes a self-healing pipeline deployment.
type Config struct {
	// Trainable is the model; its Blocks align 1-to-1 with Spec layers.
	Trainable *model.Trainable
	// Devices is the candidate fleet in pipeline order. The executor clones
	// them (it mutates load factors from measurements).
	Devices []*device.Device
	// MicroBatchSize is the per-micro-batch sample count.
	MicroBatchSize int
	// Links produces the pipeline's neighbour connections (default
	// runtime.PipeLinks). Migration traffic uses the same factory.
	Links runtime.Dialer
	// LinkOptions harden the links (deadlines, heartbeats, dial retries).
	LinkOptions runtime.LinkOptions
	// Chaos, when non-nil, injects link faults: chaos(i) is the shared
	// fault state of pipeline link i, surviving re-dials. Migration links
	// are fresh and clean (the portal re-establishes them out of band).
	Chaos func(link int) *simnet.Chaos
	// Monitor detects measured per-stage step-time deviations (§4.4). Nil
	// means a default Monitor (25% threshold).
	Monitor *adaptive.Monitor
	// MaxHeals bounds recovery attempts per round before giving up
	// (default 8; negative disables healing).
	MaxHeals int
	// BackoffBase/BackoffMax pace retries between heal attempts under the
	// flnet backoff policy (defaults 10ms/400ms). JitterSeed seeds the
	// jitter stream (0 derives one).
	BackoffBase, BackoffMax time.Duration
	JitterSeed              int64
	// Trace, when non-nil, records abort/migration spans.
	Trace *obs.Trace
	// Journal, when non-nil, is the flight recorder: every heal-path
	// decision (kill, detect, abort, repartition, segment shipping, resume,
	// round commit) lands in it as a correlated event, and each chaos link
	// is attached so injected faults log their cause into the same
	// timeline. Nil costs nothing (nop recorder discipline).
	Journal *journal.Recorder
}

// Stats counts what the executor did; read them via Executor.Stats.
type Stats struct {
	// Rounds is the number of committed sync-rounds.
	Rounds int
	// Aborts counts rounds that failed mid-flight and were rolled back.
	Aborts int
	// Heals counts abort→recover cycles (transient retries and failovers).
	Heals int
	// Migrations counts executed weight migrations (failover or
	// monitor-triggered rebalancing).
	Migrations int
	// MigratedBytes is the executed weight volume shipped over links.
	MigratedBytes int64
	// PlannedMoveBytes is what adaptive.PlanMigration predicted for the
	// same layout changes — the analytic/executed comparison.
	PlannedMoveBytes float64
	// LastDetectLatency is the wall time from fault to full round unwind.
	LastDetectLatency time.Duration
	// LastMigrationTime is the wall time of the last executed migration
	// (weight shipping plus pipeline rebuild).
	LastMigrationTime time.Duration
}

// Executor drives self-healing distributed training.
type Executor struct {
	cfg     Config
	spec    *model.Spec
	devs    []*device.Device // cloned fleet, pipeline order
	monitor *adaptive.Monitor
	rng     *rand.Rand

	mu       sync.Mutex
	alive    []bool
	stages   []pipeline.Stage // current plan over the alive devices
	pipe     *runtime.DistPipeline
	delays   []time.Duration // injected per-device external load
	baseStep []float64       // first measured per-micro step time per device
	killAt   map[int]int     // round → device index to kill at round start
	taps     map[int][]net.Conn
	round    int
	stats    Stats
}

// New validates the config, partitions the model over the fleet with the
// DP partitioner and builds the initial pipeline.
func New(cfg Config) (*Executor, error) {
	if cfg.Trainable == nil || len(cfg.Devices) == 0 {
		return nil, errors.New("executor: need a Trainable and at least one device")
	}
	if cfg.MicroBatchSize <= 0 {
		return nil, errors.New("executor: micro-batch size must be positive")
	}
	if cfg.Links == nil {
		cfg.Links = runtime.PipeLinks()
	}
	if cfg.Monitor == nil {
		cfg.Monitor = &adaptive.Monitor{}
	}
	if cfg.MaxHeals == 0 {
		cfg.MaxHeals = 8
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 10 * time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 400 * time.Millisecond
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = int64(len(cfg.Devices)) + 7
	}
	e := &Executor{
		cfg:      cfg,
		spec:     cfg.Trainable.Spec,
		devs:     device.CloneAll(cfg.Devices),
		monitor:  cfg.Monitor,
		rng:      rand.New(rand.NewSource(cfg.JitterSeed)),
		alive:    make([]bool, len(cfg.Devices)),
		delays:   make([]time.Duration, len(cfg.Devices)),
		baseStep: make([]float64, len(cfg.Devices)),
		killAt:   map[int]int{},
		taps:     map[int][]net.Conn{},
	}
	for i := range e.alive {
		e.alive[i] = true
	}
	if err := e.rebuildLocked(e.aliveDevicesLocked()); err != nil {
		return nil, err
	}
	return e, nil
}

// aliveDevicesLocked returns the surviving devices in pipeline order.
func (e *Executor) aliveDevicesLocked() []*device.Device {
	var out []*device.Device
	for i, d := range e.devs {
		if e.alive[i] {
			out = append(out, d)
		}
	}
	return out
}

// devIndex maps a device pointer back to its fleet position.
func (e *Executor) devIndex(d *device.Device) int {
	for i, dd := range e.devs {
		if dd == d {
			return i
		}
	}
	return -1
}

// rebuildLocked plans a partition over devs and swaps in a fresh pipeline.
// Caller holds e.mu.
func (e *Executor) rebuildLocked(devs []*device.Device) error {
	if len(devs) == 0 {
		return ErrNoSurvivors
	}
	plan, err := partition.DynamicProgrammingBatch(e.spec, devs, e.cfg.MicroBatchSize)
	if err != nil {
		return fmt.Errorf("executor: repartition over %d devices: %w", len(devs), err)
	}
	return e.installPlanLocked(plan.Stages)
}

// installPlanLocked builds the DistPipeline for a stage layout. Caller
// holds e.mu.
func (e *Executor) installPlanLocked(stages []pipeline.Stage) error {
	cuts := make([]int, 0, len(stages)-1)
	for _, s := range stages[:len(stages)-1] {
		cuts = append(cuts, s.To)
	}
	pipe, err := runtime.NewDistributed(e.cfg.Trainable, cuts, e.dialer())
	if err != nil {
		return err
	}
	pipe.SetLinkOptions(e.cfg.LinkOptions)
	if e.cfg.Trace != nil {
		pipe.SetTrace(e.cfg.Trace)
	}
	e.stages = stages
	e.pipe = pipe
	for s, st := range stages {
		if di := e.devIndex(st.Device); di >= 0 {
			pipe.SetStageDelay(s, e.delays[di])
		}
	}
	return nil
}

// dialer wraps the base links with chaos injection, the dead-device kill
// switch, and a tap that lets KillDevice sever a stage's links mid-round.
func (e *Executor) dialer() runtime.Dialer {
	base := e.cfg.Links
	if e.cfg.Chaos != nil {
		chaos := e.cfg.Chaos
		if e.cfg.Journal != nil {
			// Attach the flight recorder to every chaos link so injected
			// faults log their cause alongside the heal steps they trigger.
			orig := chaos
			chaos = func(i int) *simnet.Chaos {
				c := orig(i)
				c.SetJournal(e.cfg.Journal, i)
				return c
			}
		}
		base = runtime.ChaosLinks(base, chaos)
	}
	return func(i int) (net.Conn, net.Conn, error) {
		up, down, err := base(i)
		if err != nil {
			return nil, nil, err
		}
		e.mu.Lock()
		dead := e.linkDeadLocked(i)
		if !dead {
			e.taps[i] = []net.Conn{up, down}
		}
		e.mu.Unlock()
		if dead {
			// The link touches a dead device: hand the round endpoints that
			// fail on first use, so detection runs through the live abort
			// path rather than a dial error.
			return &downedConn{Conn: up}, &downedConn{Conn: down}, nil
		}
		return up, down, nil
	}
}

// linkDeadLocked reports whether pipeline link i touches a dead device
// under the current (possibly stale) plan. Caller holds e.mu.
func (e *Executor) linkDeadLocked(i int) bool {
	for _, s := range []int{i, i + 1} {
		if s >= 0 && s < len(e.stages) {
			if di := e.devIndex(e.stages[s].Device); di >= 0 && !e.alive[di] {
				return true
			}
		}
	}
	return false
}

// downedConn is an endpoint of a link whose device has died: every
// operation fails immediately.
type downedConn struct{ net.Conn }

var errDeviceDown = errors.New("executor: stage device is down")

func (c *downedConn) Read([]byte) (int, error)  { return 0, errDeviceDown }
func (c *downedConn) Write([]byte) (int, error) { return 0, errDeviceDown }

// KillDevice marks fleet device i dead and severs its stage's live links,
// aborting any in-flight round. The next TrainRound heals: survivors are
// re-partitioned and the dead device's layers migrate to them. Killing an
// already-dead device is a no-op.
func (e *Executor) KillDevice(i int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < 0 || i >= len(e.devs) || !e.alive[i] {
		return
	}
	e.alive[i] = false
	e.cfg.Journal.Record("exec.kill", e.round, i)
	// Sever the dead stage's links mid-round, if it is part of the plan.
	for s, st := range e.stages {
		if e.devIndex(st.Device) == i {
			for _, li := range []int{s - 1, s} {
				for _, c := range e.taps[li] {
					c.Close()
				}
			}
		}
	}
}

// ScheduleKill arranges for device dev to die at the start of round r
// (0-based, counting committed rounds) — the deterministic failure injector
// the chaos soak uses. The doomed round still executes against the stale
// partition and aborts live, exercising detection end-to-end.
func (e *Executor) ScheduleKill(r, dev int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.killAt[r] = dev
}

// SetDeviceDelay injects an external-load delay on fleet device i: every
// forward/backward op of the stage it runs sleeps this long extra. The
// monitor sees the measured slowdown and rebalances (§4.4). Zero clears it.
func (e *Executor) SetDeviceDelay(i int, d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < 0 || i >= len(e.devs) {
		return
	}
	e.delays[i] = d
	for s, st := range e.stages {
		if e.devIndex(st.Device) == i {
			e.pipe.SetStageDelay(s, d)
		}
	}
}

// Stats returns a snapshot of the executor's counters.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Stages returns the current stage layout (device + layer range per stage).
func (e *Executor) Stages() []pipeline.Stage {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]pipeline.Stage(nil), e.stages...)
}

// Network returns the trained network (shared parameters).
func (e *Executor) Network() *nn.Network { return e.cfg.Trainable.Network() }

// Rounds returns the number of committed sync-rounds.
func (e *Executor) Rounds() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.round
}

// TrainRound runs one sync-round to commit, healing as needed: a fault
// aborts the round (no weights committed), the executor re-partitions the
// survivors if a device died, ships moved weight segments over fresh links,
// and replays the round. Returns the committed mean loss.
func (e *Executor) TrainRound(x *tensor.Tensor, labels []int, opt *nn.SGD) (float64, error) {
	e.mu.Lock()
	if dev, ok := e.killAt[e.round]; ok {
		delete(e.killAt, e.round)
		e.mu.Unlock()
		e.KillDevice(dev)
		e.mu.Lock()
	}
	pipe := e.pipe
	round := e.round
	e.mu.Unlock()

	for attempt := 0; ; attempt++ {
		start := time.Now()
		loss, err := pipe.TrainSyncRound(x, labels, e.cfg.MicroBatchSize, opt)
		if err == nil {
			e.mu.Lock()
			e.round++
			e.stats.Rounds++
			e.mu.Unlock()
			e.cfg.Journal.Record("exec.round-commit", round, journal.None,
				"loss", strconv.FormatFloat(loss, 'g', 6, 64), "attempt", strconv.Itoa(attempt))
			e.observe(x.Rows())
			return loss, nil
		}
		detect := time.Since(start)
		detectSeconds.Observe(detect.Seconds())
		e.cfg.Journal.Record("exec.detect", round, journal.None,
			"err", journalErrText(err), "attempt", strconv.Itoa(attempt))
		e.mu.Lock()
		e.stats.Aborts++
		e.stats.LastDetectLatency = detect
		e.mu.Unlock()
		e.cfg.Journal.Record("exec.abort", round, journal.None,
			"detect_ms", strconv.FormatInt(detect.Milliseconds(), 10))
		if e.cfg.MaxHeals < 0 || attempt >= e.cfg.MaxHeals {
			e.cfg.Journal.Record("exec.unrecoverable", round, journal.None,
				"attempts", strconv.Itoa(attempt))
			return 0, fmt.Errorf("executor: round %d unrecoverable after %d heal attempts: %w", e.round, attempt, err)
		}
		time.Sleep(flnet.BackoffDelay(attempt+1, e.cfg.BackoffBase, e.cfg.BackoffMax, e.rng))
		if herr := e.heal(); herr != nil {
			return 0, herr
		}
		e.cfg.Journal.Record("exec.resume", round, journal.None, "attempt", strconv.Itoa(attempt+1))
		e.mu.Lock()
		pipe = e.pipe
		e.mu.Unlock()
	}
}

// journalErrText keeps journaled error strings bounded.
func journalErrText(err error) string {
	s := err.Error()
	if len(s) > 120 {
		s = s[:117] + "..."
	}
	return s
}

// heal recovers from an aborted round. If the current plan includes a dead
// device, survivors are re-partitioned and weights migrate; for transient
// link faults the plan stands and the next attempt simply dials fresh links
// (through the same chaos state, so open partition windows persist).
func (e *Executor) heal() error {
	sp := e.cfg.Trace.Begin(0, 0, "heal", "executor")
	defer sp.End()
	e.mu.Lock()
	e.stats.Heals++
	healsTotal.Inc()
	deadInPlan := false
	for _, st := range e.stages {
		if di := e.devIndex(st.Device); di >= 0 && !e.alive[di] {
			deadInPlan = true
			break
		}
	}
	if !deadInPlan {
		e.mu.Unlock()
		return nil // transient: fresh links on the next round attempt
	}
	survivors := e.aliveDevicesLocked()
	e.mu.Unlock()
	return e.migrateTo(survivors)
}

// migrateTo re-partitions the model over devs, executes the weight
// migration for every layer whose owner changed, and swaps in the rebuilt
// pipeline. Weight shipping is real: each moved segment crosses a fresh
// connection as a gob frame and is installed on arrival.
func (e *Executor) migrateTo(devs []*device.Device) error {
	if len(devs) == 0 {
		return ErrNoSurvivors
	}
	sp := e.cfg.Trace.Begin(0, 0, "migrate", "executor")
	defer sp.End()
	start := time.Now()
	plan, err := partition.DynamicProgrammingBatch(e.spec, devs, e.cfg.MicroBatchSize)
	if err != nil {
		return fmt.Errorf("executor: repartition over %d devices: %w", len(devs), err)
	}
	e.mu.Lock()
	oldStages := append([]pipeline.Stage(nil), e.stages...)
	round := e.round
	e.mu.Unlock()
	e.cfg.Journal.Record("exec.repartition", round, journal.None,
		"stages", strconv.Itoa(len(plan.Stages)), "devices", strconv.Itoa(len(devs)))

	moved, err := movedRanges(e.spec, oldStages, plan.Stages)
	if err != nil {
		return err
	}
	var shipped int64
	if len(moved) > 0 {
		if shipped, err = e.shipSegments(moved, round); err != nil {
			return fmt.Errorf("executor: weight migration: %w", err)
		}
	}
	// The analytic counterpart for the executed move (restart overhead 0:
	// the rebuild below is measured, not modelled).
	var plannedBytes float64
	if mig, perr := adaptive.PlanMigration(e.spec, oldStages, plan.Stages, 0); perr == nil {
		plannedBytes = mig.MovedParamBytes
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.installPlanLocked(plan.Stages); err != nil {
		return err
	}
	dur := time.Since(start)
	e.stats.Migrations++
	e.stats.MigratedBytes += shipped
	e.stats.PlannedMoveBytes += plannedBytes
	e.stats.LastMigrationTime = dur
	migrationsTotal.Inc()
	migratedBytesTotal.Add(shipped)
	migrationSeconds.Observe(dur.Seconds())
	// Stage workloads changed everywhere: old step-time history is void.
	for i := range e.devs {
		e.monitor.Forget(i)
		e.baseStep[i] = 0
	}
	return nil
}

// movedRange is a contiguous block range whose owner changed.
type movedRange struct{ from, to int }

// movedRanges diffs two stage layouts into the contiguous layer ranges that
// must ship to a new device. Layers owned by a device no longer in the new
// layout (it died) are recovered from the round-boundary model state the
// portal holds — exactly what makes commit-at-round-boundaries the
// checkpointing discipline of this pipeline.
func movedRanges(spec *model.Spec, old, new []pipeline.Stage) ([]movedRange, error) {
	L := spec.NumLayers()
	oldOwner, err := partition.Assignment(old, L)
	if err != nil {
		return nil, err
	}
	newOwner, err := partition.Assignment(new, L)
	if err != nil {
		return nil, err
	}
	var out []movedRange
	for l := 0; l < L; l++ {
		if old[oldOwner[l]].Device == new[newOwner[l]].Device {
			continue
		}
		if n := len(out); n > 0 && out[n-1].to == l {
			out[n-1].to = l + 1
		} else {
			out = append(out, movedRange{l, l + 1})
		}
	}
	return out, nil
}

// segmentMsg is the wire format of one migrated weight segment.
type segmentMsg struct {
	From, To int
	Data     []float64
}

// shipSegments executes the migration: for every moved range, the portal
// serializes the segment's weights from the last committed round boundary,
// sends them over a fresh connection, and the receiving side validates and
// installs them. Returns the shipped byte volume.
func (e *Executor) shipSegments(moved []movedRange, round int) (int64, error) {
	up, down, err := e.cfg.Links(0)
	if err != nil {
		return 0, err
	}
	defer up.Close()
	defer down.Close()

	sendErr := make(chan error, 1)
	go func() {
		enc := gob.NewEncoder(up)
		for _, r := range moved {
			seg := e.cfg.Trainable.SegmentNet(r.from, r.to)
			if err := enc.Encode(&segmentMsg{From: r.from, To: r.to, Data: seg.FlatWeights()}); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()

	var shipped int64
	dec := gob.NewDecoder(down)
	for _, r := range moved {
		var msg segmentMsg
		if err := dec.Decode(&msg); err != nil {
			return shipped, err
		}
		if msg.From != r.from || msg.To != r.to {
			return shipped, fmt.Errorf("segment [%d,%d) arrived, expected [%d,%d)", msg.From, msg.To, r.from, r.to)
		}
		seg := e.cfg.Trainable.SegmentNet(msg.From, msg.To)
		if want := seg.NumParams(); len(msg.Data) != want {
			return shipped, fmt.Errorf("segment [%d,%d): %d weights, expected %d", msg.From, msg.To, len(msg.Data), want)
		}
		seg.SetFlatWeights(msg.Data)
		shipped += int64(len(msg.Data) * 8)
		e.cfg.Journal.Record("exec.ship-segment", round, journal.None,
			"from", strconv.Itoa(msg.From), "to", strconv.Itoa(msg.To),
			"bytes", strconv.Itoa(len(msg.Data)*8))
	}
	return shipped, <-sendErr
}

// observe feeds the monitor with the round's measured per-stage step times
// and rebalances proactively when a stage deviates slower than its history
// beyond the threshold (§4.4's detection rule on live measurements).
func (e *Executor) observe(rows int) {
	e.mu.Lock()
	st := e.pipe.LastRoundStats()
	stages := append([]pipeline.Stage(nil), e.stages...)
	e.mu.Unlock()
	if st == nil || st.Aborted {
		return
	}
	m := (rows + e.cfg.MicroBatchSize - 1) / e.cfg.MicroBatchSize
	if m == 0 {
		return
	}
	trigger := false
	for s, ct := range st.ComputeTime {
		if s >= len(stages) {
			break
		}
		di := e.devIndex(stages[s].Device)
		if di < 0 {
			continue
		}
		perMicro := ct.Seconds() / float64(m)
		dev, slower := e.monitor.Check(di, perMicro)
		e.mu.Lock()
		if e.baseStep[di] == 0 {
			e.baseStep[di] = perMicro
		} else if perMicro > 0 {
			e.devs[di].ApplyMeasuredSlowdown(perMicro / e.baseStep[di])
		}
		e.mu.Unlock()
		if slower && e.monitor.Exceeds(dev) {
			trigger = true
		}
	}
	if !trigger {
		return
	}
	e.mu.Lock()
	survivors := e.aliveDevicesLocked()
	e.mu.Unlock()
	// Rebalance on the measured rates; if the partitioner keeps the same
	// layout the migration is a no-op diff and ships nothing.
	if err := e.migrateTo(survivors); err != nil {
		// A failed proactive rebalance is not fatal: training continues on
		// the current (slower) layout and the next deviation retries.
		return
	}
}
