//go:build race

package executor

const raceEnabled = true
