package executor

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ecofl/internal/device"
	"ecofl/internal/model"
	"ecofl/internal/nn"
	"ecofl/internal/obs/journal"
	"ecofl/internal/obs/journal/journaltest"
	"ecofl/internal/obs/leakcheck"
	"ecofl/internal/partition"
	"ecofl/internal/pipeline/runtime"
	"ecofl/internal/simnet"
	"ecofl/internal/tensor"
)

func makeData(rng *rand.Rand, n, dim, classes int) (*tensor.Tensor, []int) {
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = rng.Intn(classes)
		for j := 0; j < dim; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	return x, labels
}

func fleet() []*device.Device {
	return []*device.Device{device.TX2N(), device.TX2Q(), device.NanoH()}
}

// trainRef trains an identically-seeded model for the same rounds on a
// fault-free single-stage in-process pipeline — the bit-identity oracle
// (1F1B-Sync gradient accumulation is partition-independent).
func trainRef(t *testing.T, seed int64, rounds int, x *tensor.Tensor, labels []int, mbs int, lr float64) []float64 {
	t.Helper()
	tr := model.NewTrainableMLP(rand.New(rand.NewSource(seed)), "ref", x.Cols(), []int{14, 12, 10}, 4)
	p, err := runtime.New(tr, nil)
	if err != nil {
		t.Fatalf("ref pipeline: %v", err)
	}
	opt := &nn.SGD{LR: lr}
	for r := 0; r < rounds; r++ {
		if _, err := p.TrainSyncRound(x, labels, mbs, opt); err != nil {
			t.Fatalf("ref round %d: %v", r, err)
		}
	}
	return tr.Network().FlatWeights()
}

func weightsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKillFailoverBitIdentical kills two of three devices at scheduled
// rounds; the executor must detect each death through the live abort path,
// re-partition the survivors, execute the weight migration, and finish with
// a model bit-identical to a fault-free run.
func TestKillFailoverBitIdentical(t *testing.T) {
	const seed, mbs, rounds, lr = 42, 6, 6, 0.05
	rng := rand.New(rand.NewSource(7))
	x, labels := makeData(rng, 24, 12, 4)
	baseline := leakcheck.Baseline()

	rec := journal.New(0, 512)
	journaltest.DumpOnFailure(t, 80, rec)
	tr := model.NewTrainableMLP(rand.New(rand.NewSource(seed)), "ref", 12, []int{14, 12, 10}, 4)
	exec, err := New(Config{
		Trainable:      tr,
		Devices:        fleet(),
		MicroBatchSize: mbs,
		LinkOptions:    runtime.LinkOptions{RecvTimeout: 2 * time.Second, DialRetries: 2},
		Journal:        rec,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	exec.ScheduleKill(2, 1) // mid-fleet device dies before round 2
	exec.ScheduleKill(4, 0) // then the head device: single survivor

	opt := &nn.SGD{LR: lr}
	for r := 0; r < rounds; r++ {
		if _, err := exec.TrainRound(x, labels, opt); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}

	st := exec.Stats()
	if st.Rounds != rounds {
		t.Fatalf("committed %d rounds, want %d", st.Rounds, rounds)
	}
	if st.Aborts < 2 || st.Migrations < 2 {
		t.Fatalf("expected >=2 aborts and >=2 migrations, got %+v", st)
	}
	if st.MigratedBytes == 0 {
		t.Fatalf("executed migration shipped no bytes: %+v", st)
	}
	if st.LastDetectLatency <= 0 || st.LastMigrationTime <= 0 {
		t.Fatalf("missing detection/migration timings: %+v", st)
	}
	if got := len(exec.Stages()); got != 1 {
		t.Fatalf("expected 1 surviving stage, got %d", got)
	}
	want := trainRef(t, seed, rounds, x, labels, mbs, lr)
	if !weightsEqual(exec.Network().FlatWeights(), want) {
		t.Fatal("recovered model is not bit-identical to the fault-free run")
	}
	// Two kills and two migrations later, nothing may still be running:
	// stage goroutines, link readers, and heal machinery all unwound.
	leakcheck.Check(t, baseline)
}

// chaosPerLink memoizes one shared Chaos per link index so the fault
// schedule and open partition windows survive re-dials.
func chaosPerLink(mode simnet.FaultMode, seed int64, prob float64) func(int) *simnet.Chaos {
	var mu sync.Mutex
	links := map[int]*simnet.Chaos{}
	return func(i int) *simnet.Chaos {
		mu.Lock()
		defer mu.Unlock()
		if c, ok := links[i]; ok {
			return c
		}
		c := simnet.NewChaos(simnet.FaultPlan{
			Seed:      seed + int64(i),
			Mode:      mode,
			Prob:      prob,
			After:     4,
			Stall:     400 * time.Millisecond,
			Partition: 120 * time.Millisecond,
		})
		links[i] = c
		return c
	}
}

// TestChaosSoak trains to completion under every fault mode plus a killed
// stage device, and checks the final model stays bit-identical to the
// fault-free oracle — the PR's acceptance scenario.
func TestChaosSoak(t *testing.T) {
	modes := []simnet.FaultMode{
		simnet.FaultDrop, simnet.FaultStall, simnet.FaultBlackHole,
		simnet.FaultSever, simnet.FaultPartition,
	}
	const seed, mbs, lr = 99, 6, 0.05
	rounds := 6
	if testing.Short() {
		rounds = 3
	}
	rng := rand.New(rand.NewSource(11))
	x, labels := makeData(rng, 24, 12, 4)
	want := trainRef(t, seed, rounds, x, labels, mbs, lr)

	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			rec := journal.New(0, 2048)
			journaltest.DumpOnFailure(t, 120, rec)
			tr := model.NewTrainableMLP(rand.New(rand.NewSource(seed)), "ref", 12, []int{14, 12, 10}, 4)
			exec, err := New(Config{
				Trainable:      tr,
				Devices:        fleet(),
				MicroBatchSize: mbs,
				Chaos:          chaosPerLink(mode, 1000+int64(mode), 0.03),
				MaxHeals:       14,
				Journal:        rec,
				LinkOptions: runtime.LinkOptions{
					SendTimeout: 300 * time.Millisecond,
					RecvTimeout: 250 * time.Millisecond,
					RecvBudget:  1500 * time.Millisecond,
					Heartbeat:   50 * time.Millisecond,
					DialRetries: 4,
					JitterSeed:  int64(mode) + 1,
				},
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			exec.ScheduleKill(rounds/2, 1)
			opt := &nn.SGD{LR: lr}
			for r := 0; r < rounds; r++ {
				if _, err := exec.TrainRound(x, labels, opt); err != nil {
					t.Fatalf("round %d under %s: %v", r, mode, err)
				}
			}
			st := exec.Stats()
			if st.Rounds != rounds || st.Aborts < 1 || st.Migrations < 1 {
				t.Fatalf("under %s: %+v", mode, st)
			}
			if !weightsEqual(exec.Network().FlatWeights(), want) {
				t.Fatalf("under %s: recovered model diverged from fault-free run", mode)
			}
			// Forensic record: the injected faults logged their cause into
			// the same timeline as the heal steps they triggered, and the
			// kill's heal sequence is causally ordered.
			evs := rec.Events()
			injects := 0
			for _, e := range evs {
				if e.Kind == "chaos.inject" {
					if e.Attrs["mode"] != mode.String() {
						t.Fatalf("chaos.inject wrong mode attr: %+v", e)
					}
					injects++
				}
			}
			if injects == 0 {
				t.Fatalf("under %s: no chaos.inject events in journal:\n%s", mode, journal.Timeline(evs))
			}
			assertHealOrder(t, evs)
		})
	}
}

// TestMonitorTriggeredRebalance injects an external-load delay on the
// device carrying the most layers; the monitor must see the measured
// per-stage slowdown and the executor must rebalance layers away from it.
func TestMonitorTriggeredRebalance(t *testing.T) {
	if raceEnabled {
		// The DP model's comm term dominates this tiny MLP's stage times, so
		// a cut only moves once the measured slowdown ratio is ~4000×. Race
		// instrumentation inflates the baseline step time roughly tenfold,
		// which compresses the achievable ratio below that threshold — the
		// monitor fires but the repartition keeps the layout. The
		// race-relevant machinery (abort, migration, link teardown) is
		// exercised under -race by TestChaosSoak and
		// TestKillFailoverBitIdentical; this test checks the wall-clock
		// trigger math, which only holds uninstrumented.
		t.Skip("measured-ratio threshold unreachable under race instrumentation")
	}
	const seed, mbs, lr = 5, 6, 0.05
	rng := rand.New(rand.NewSource(3))
	x, labels := makeData(rng, 24, 12, 4)
	tr := model.NewTrainableMLP(rand.New(rand.NewSource(seed)), "ref", 12, []int{14, 12, 10}, 4)
	exec, err := New(Config{Trainable: tr, Devices: fleet(), MicroBatchSize: mbs})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	opt := &nn.SGD{LR: lr}
	// Warm-up: seed the monitor history and the baseline step times.
	for r := 0; r < 3; r++ {
		if _, err := exec.TrainRound(x, labels, opt); err != nil {
			t.Fatalf("warm-up round %d: %v", r, err)
		}
	}
	// Find the device carrying the most layers and load it down.
	stages := exec.Stages()
	loaded, width := 0, 0
	for s, st := range stages {
		if w := st.To - st.From; w > width {
			width = w
			loaded = s
		}
	}
	loadedDev := -1
	for i := range fleet() {
		if exec.devs[i] == stages[loaded].Device {
			loadedDev = i
		}
	}
	if loadedDev < 0 {
		t.Fatal("could not map loaded stage to a fleet device")
	}
	// The delay must be heavy enough that the measured slowdown ratio drops
	// the device's modelled rate below the point where compute, not link
	// bandwidth, is its stage's bottleneck — otherwise the partitioner
	// rightly keeps the layout. Assert on the first round whose layout
	// shrinks the loaded stage: after a migration the monitor re-baselines
	// with the load included, so later noise can legitimately rebalance
	// again.
	exec.SetDeviceDelay(loadedDev, 50*time.Millisecond)
	before := exec.Stats().Migrations
	for r := 0; r < 6; r++ {
		if _, err := exec.TrainRound(x, labels, opt); err != nil {
			t.Fatalf("loaded round %d: %v", r, err)
		}
		shrunk := false
		for _, s := range exec.Stages() {
			if s.Device == exec.devs[loadedDev] && s.To-s.From < width {
				shrunk = true
			}
		}
		if shrunk {
			if got := exec.Stats(); got.Migrations <= before || got.MigratedBytes == 0 {
				t.Fatalf("layout changed without an executed migration: %+v", got)
			}
			return
		}
	}
	t.Fatalf("monitor never rebalanced layers off the loaded device: %+v", exec.Stats())
}

// TestNoSurvivors verifies the terminal failure: killing every device makes
// TrainRound return ErrNoSurvivors instead of retrying forever.
func TestNoSurvivors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, labels := makeData(rng, 12, 8, 3)
	tr := model.NewTrainableMLP(rand.New(rand.NewSource(2)), "tiny", 8, []int{10}, 3)
	exec, err := New(Config{Trainable: tr, Devices: fleet()[:2], MicroBatchSize: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	exec.KillDevice(0)
	exec.KillDevice(1)
	if _, err := exec.TrainRound(x, labels, &nn.SGD{LR: 0.1}); !errors.Is(err, ErrNoSurvivors) {
		t.Fatalf("want ErrNoSurvivors, got %v", err)
	}
}

// TestConfigValidation covers the constructor's rejection paths.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	tr := model.NewTrainableMLP(rand.New(rand.NewSource(2)), "tiny", 8, []int{10}, 3)
	if _, err := New(Config{Trainable: tr, Devices: fleet()}); err == nil {
		t.Fatal("zero micro-batch size accepted")
	}
}

// TestMovedRangesDiff checks the layout diff used by the migration
// executor: only layers whose owning device changed are shipped, as
// contiguous runs.
func TestMovedRangesDiff(t *testing.T) {
	tr := model.NewTrainableMLP(rand.New(rand.NewSource(9)), "diff", 12, []int{14, 12, 10}, 4)
	devs := fleet()
	old, err := partition.DynamicProgrammingBatch(tr.Spec, devs, 6)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	same, err := movedRanges(tr.Spec, old.Stages, old.Stages)
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if len(same) != 0 {
		t.Fatalf("identical layouts moved %v", same)
	}
	newPlan, err := partition.DynamicProgrammingBatch(tr.Spec, devs[:2], 6)
	if err != nil {
		t.Fatalf("partition survivors: %v", err)
	}
	moved, err := movedRanges(tr.Spec, old.Stages, newPlan.Stages)
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if len(moved) == 0 {
		t.Fatal("device removal moved no layers")
	}
	total := 0
	for _, r := range moved {
		if r.to <= r.from {
			t.Fatalf("empty range %+v", r)
		}
		total += r.to - r.from
	}
	if total > tr.Spec.NumLayers() {
		t.Fatalf("moved %d of %d layers", total, tr.Spec.NumLayers())
	}
}
