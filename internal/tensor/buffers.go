package tensor

import "sync"

// Buffer pool: per-size free lists for the transient tensors the training
// hot path churns through (im2col matrices, matmul scratch, activations the
// caller recycles). GetBuf/PutBuf are opt-in — a pooled tensor that is never
// returned behaves exactly like one from New and is reclaimed by the GC.
//
// Ownership discipline: only Put a tensor whose storage you know is not
// aliased (Flatten-style views share Data with their source and must never
// be returned to the pool).

var bufPools sync.Map // element count → *sync.Pool of *Tensor

func poolFor(n int) *sync.Pool {
	if p, ok := bufPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := bufPools.LoadOrStore(n, &sync.Pool{
		New: func() any { return &Tensor{Data: make([]float64, n)} },
	})
	return p.(*sync.Pool)
}

// GetBuf returns a zero-filled pooled tensor with the given shape.
func GetBuf(shape ...int) *Tensor {
	t := GetBufUninit(shape...)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// GetBufUninit returns a pooled tensor with the given shape whose contents
// are unspecified (possibly stale). Use only as a destination that will be
// fully overwritten, e.g. by the MatMul*Into kernels.
func GetBufUninit(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	t := poolFor(n).Get().(*Tensor)
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// PutBuf returns t to the pool for reuse by a later GetBuf of the same
// element count. The caller must not use t afterwards.
func PutBuf(t *Tensor) {
	if t == nil || len(t.Data) == 0 {
		return
	}
	poolFor(len(t.Data)).Put(t)
}
