package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 {
		t.Fatalf("Len = %d, want 24", a.Len())
	}
	if a.Rows() != 2 || a.Cols() != 12 {
		t.Fatalf("Rows/Cols = %d/%d, want 2/12", a.Rows(), a.Cols())
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dim")
		}
	}()
	New(2, -1)
}

func TestAtSet(t *testing.T) {
	a := New(3, 4)
	a.Set(2, 3, 7.5)
	if a.At(2, 3) != 7.5 {
		t.Fatalf("At(2,3) = %v, want 7.5", a.At(2, 3))
	}
	if a.Data[2*4+3] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone must deep-copy data")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// transpose returns an explicit transpose of a 2-D tensor.
func transpose(a *Tensor) *Tensor {
	out := New(a.Cols(), a.Rows())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			out.Set(j, i, a.At(i, j))
		}
	}
	return out
}

// MatMulAT(a,b) must equal MatMul(aᵀ,b); MatMulBT(a,b) must equal MatMul(a,bᵀ).
func TestTransposedMatMulVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 4, 3)
	b := Randn(rng, 1, 4, 5)
	if got, want := MatMulAT(a, b), MatMul(transpose(a), b); !AlmostEqual(got, want, 1e-12) {
		t.Fatal("MatMulAT disagrees with explicit transpose")
	}
	c := Randn(rng, 1, 5, 3) // (4×3)·(5×3)ᵀ → 4×5
	if got, want := MatMulBT(a, c), MatMul(a, transpose(c)); !AlmostEqual(got, want, 1e-12) {
		t.Fatal("MatMulBT disagrees with explicit transpose")
	}
}

func TestAxpyOps(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{10, 20}, 2)
	a.AddScaled(0.5, b)
	if a.Data[0] != 6 || a.Data[1] != 12 {
		t.Fatalf("AddScaled got %v", a.Data)
	}
	a.Sub(b)
	if a.Data[0] != -4 || a.Data[1] != -8 {
		t.Fatalf("Sub got %v", a.Data)
	}
	a.Scale(-1)
	if a.Data[0] != 4 || a.Data[1] != 8 {
		t.Fatalf("Scale got %v", a.Data)
	}
}

func TestDotNorm(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	if a.Norm2() != 25 {
		t.Fatalf("Norm2 = %v, want 25", a.Norm2())
	}
	b := FromSlice([]float64{1, 1}, 2)
	if a.Dot(b) != 7 {
		t.Fatalf("Dot = %v, want 7", a.Dot(b))
	}
}

func TestArgmaxRow(t *testing.T) {
	a := FromSlice([]float64{0, 5, 2, 9, 1, 3}, 2, 3)
	if a.ArgmaxRow(0) != 1 {
		t.Fatalf("ArgmaxRow(0) = %d, want 1", a.ArgmaxRow(0))
	}
	if a.ArgmaxRow(1) != 0 {
		t.Fatalf("ArgmaxRow(1) = %d, want 0", a.ArgmaxRow(1))
	}
}

func TestHadamard(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	a.Hadamard(b)
	want := []float64{4, 10, 18}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("Hadamard[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
}

func TestEqualAndAlmostEqual(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1, 2}, 1, 2)
	if Equal(a, b) {
		t.Fatal("Equal must compare shapes")
	}
	c := FromSlice([]float64{1, 2.0000001}, 2)
	if Equal(a, c) {
		t.Fatal("Equal must compare exact data")
	}
	if !AlmostEqual(a, c, 1e-6) {
		t.Fatal("AlmostEqual within tol must hold")
	}
	if AlmostEqual(a, c, 1e-9) {
		t.Fatal("AlmostEqual outside tol must fail")
	}
}

// Property: (A·B)·v == A·(B·v) for random matrices — associativity of our
// matmul against itself, a strong correctness signal.
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Randn(rng, 1, 3, 4)
		b := Randn(rng, 1, 4, 2)
		v := Randn(rng, 1, 2, 1)
		left := MatMul(MatMul(a, b), v)
		right := MatMul(a, MatMul(b, v))
		return AlmostEqual(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot(x,x) ≥ 0 and Scale(-1) twice is identity.
func TestScaleInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := Randn(rng, 2, 7)
		orig := x.Clone()
		x.Scale(-1).Scale(-1)
		return Equal(x, orig) && x.Norm2() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandnDeterminism(t *testing.T) {
	a := Randn(rand.New(rand.NewSource(7)), 0.1, 5, 5)
	b := Randn(rand.New(rand.NewSource(7)), 0.1, 5, 5)
	if !Equal(a, b) {
		t.Fatal("Randn with same seed must be deterministic")
	}
	var std float64
	for _, v := range a.Data {
		std += v * v
	}
	std = math.Sqrt(std / float64(a.Len()))
	if std <= 0 || std > 0.5 {
		t.Fatalf("Randn std wildly off: %v", std)
	}
}
