package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ecofl/internal/metrics"
)

// The kernels in this package split their output across a small package-level
// worker pool when the operation is large enough to amortize the hand-off.
// Each worker owns a disjoint block of output rows, so per-element float64
// accumulation order is identical to the serial kernels and results are
// bit-identical at any parallelism level — experiment curves never depend on
// the machine the simulation ran on.

// minParallelWork is the approximate scalar-operation count below which a
// kernel stays on the calling goroutine: small matrices would spend more
// time on hand-off than on arithmetic.
const minParallelWork = 1 << 16

var (
	// requestedParallelism is the knob set by SetParallelism; 0 means
	// "unset", which falls back to GOMAXPROCS at call time.
	requestedParallelism atomic.Int32

	workerMu    sync.Mutex
	workerCount int
	workQueue   chan func()
)

// Pool observability: resident-worker busy/idle split and task throughput.
// Tasks are chunky (ParallelFor only dispatches when the estimated work
// exceeds minParallelWork), so the two time.Now calls per task are noise;
// every update is a single atomic add. Inline fallbacks (queue saturated)
// are counted separately and not timed — they run on the caller's clock.
var (
	poolWorkersGauge = metrics.GetGauge("ecofl_tensor_pool_workers",
		"resident worker goroutines in the tensor compute pool")
	poolTasksTotal = metrics.GetCounter("ecofl_tensor_pool_tasks_total",
		"row-block tasks executed by pool workers")
	poolInlineTotal = metrics.GetCounter("ecofl_tensor_pool_inline_tasks_total",
		"row-block tasks run inline on the caller because the queue was full")
	poolBusyNanos = metrics.GetCounter("ecofl_tensor_pool_busy_nanoseconds_total",
		"total time pool workers spent executing tasks")
	poolIdleNanos = metrics.GetCounter("ecofl_tensor_pool_idle_nanoseconds_total",
		"total time resident pool workers spent waiting for tasks")
	parallelForSerial = metrics.GetCounter("ecofl_tensor_parallel_for_total",
		"ParallelFor invocations by dispatch path", "path", "serial")
	parallelForParallel = metrics.GetCounter("ecofl_tensor_parallel_for_total",
		"ParallelFor invocations by dispatch path", "path", "parallel")
)

// Parallelism returns the number of row-block workers kernels may use.
// Defaults to runtime.GOMAXPROCS(0) until SetParallelism is called.
func Parallelism() int {
	if n := requestedParallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism sets the number of row-block workers kernels may use.
// n ≤ 1 forces every kernel onto the serial path (no goroutine hand-off),
// which is also the automatic behaviour on single-CPU machines. Results are
// bit-identical at every setting; the knob only trades wall-clock for CPUs.
// Safe for concurrent use.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	requestedParallelism.Store(int32(n))
}

// ensureWorkers grows the pool to at least n resident workers. Workers are
// never torn down: the pool is bounded by the largest parallelism ever
// requested, which is itself bounded by the knob.
func ensureWorkers(n int) {
	workerMu.Lock()
	if workQueue == nil {
		workQueue = make(chan func(), 128)
	}
	for workerCount < n {
		workerCount++
		go func() {
			idleSince := time.Now()
			for f := range workQueue {
				t0 := time.Now()
				poolIdleNanos.Add(t0.Sub(idleSince).Nanoseconds())
				f()
				idleSince = time.Now()
				poolBusyNanos.Add(idleSince.Sub(t0).Nanoseconds())
				poolTasksTotal.Inc()
			}
		}()
	}
	poolWorkersGauge.Set(float64(workerCount))
	workerMu.Unlock()
}

// submit hands f to a pool worker, or runs it inline when the queue is
// saturated. Running inline keeps ParallelFor deadlock-free by construction:
// no task ever waits on queue capacity.
func submit(f func()) {
	select {
	case workQueue <- f:
	default:
		poolInlineTotal.Inc()
		f()
	}
}

// ParallelFor splits [0, n) into up to Parallelism() contiguous blocks and
// runs fn(lo, hi) for each, returning when every block is done. work is an
// estimate of the total scalar operations; when it is below an internal
// threshold — or parallelism is 1 — fn(0, n) runs inline on the caller.
// fn must touch only disjoint state per index; blocks may run on pool
// workers concurrently with the caller.
func ParallelFor(n, work int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Parallelism()
	if p > n {
		p = n
	}
	if p < 2 || work < minParallelWork {
		parallelForSerial.Inc()
		fn(0, n)
		return
	}
	parallelForParallel.Inc()
	ensureWorkers(p - 1)
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo := lo
		wg.Add(1)
		submit(func() {
			fn(lo, hi)
			wg.Done()
		})
	}
	fn(0, chunk)
	wg.Wait()
}
