//go:build race

package tensor

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, which invalidates allocation-count tests.
const raceEnabled = true
