package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

func benchMatPair(b *testing.B, m, k, n int) (*Tensor, *Tensor) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return Randn(rng, 1, m, k), Randn(rng, 1, k, n)
}

func BenchmarkMatMul64(b *testing.B) {
	x, y := benchMatPair(b, 64, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulAT64(b *testing.B) {
	x, y := benchMatPair(b, 64, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulAT(x, y)
	}
}

func BenchmarkMatMulBT64(b *testing.B) {
	x, y := benchMatPair(b, 64, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulBT(x, y)
	}
}

// benchInto times one destination-passing kernel at 256×256×256 under the
// given parallelism. The serial variant is the pre-existing kernel's exact
// code path, so the parallel/serial ratio is the worker-pool speedup.
func benchInto(b *testing.B, procs int, kernel func(dst, x, y *Tensor) *Tensor) {
	x, y := benchMatPair(b, 256, 256, 256)
	dst := New(256, 256)
	prev := Parallelism()
	SetParallelism(procs)
	defer SetParallelism(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(dst, x, y)
	}
}

func BenchmarkMatMulInto256Serial(b *testing.B)   { benchInto(b, 1, MatMulInto) }
func BenchmarkMatMulATInto256Serial(b *testing.B) { benchInto(b, 1, MatMulATInto) }
func BenchmarkMatMulBTInto256Serial(b *testing.B) { benchInto(b, 1, MatMulBTInto) }

func BenchmarkMatMulInto256Parallel(b *testing.B) {
	benchInto(b, runtime.GOMAXPROCS(0), MatMulInto)
}
func BenchmarkMatMulATInto256Parallel(b *testing.B) {
	benchInto(b, runtime.GOMAXPROCS(0), MatMulATInto)
}
func BenchmarkMatMulBTInto256Parallel(b *testing.B) {
	benchInto(b, runtime.GOMAXPROCS(0), MatMulBTInto)
}

func BenchmarkAddScaled(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 1, 1<<14)
	y := Randn(rng, 1, 1<<14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.AddScaled(0.1, y)
	}
}
