package tensor

import (
	"math/rand"
	"testing"
)

func benchMatPair(b *testing.B, m, k, n int) (*Tensor, *Tensor) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return Randn(rng, 1, m, k), Randn(rng, 1, k, n)
}

func BenchmarkMatMul64(b *testing.B) {
	x, y := benchMatPair(b, 64, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulAT64(b *testing.B) {
	x, y := benchMatPair(b, 64, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulAT(x, y)
	}
}

func BenchmarkMatMulBT64(b *testing.B) {
	x, y := benchMatPair(b, 64, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulBT(x, y)
	}
}

func BenchmarkAddScaled(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 1, 1<<14)
	y := Randn(rng, 1, 1<<14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.AddScaled(0.1, y)
	}
}
