package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// withParallelism runs fn with the package knob set to n, restoring the
// previous setting afterwards.
func withParallelism(n int, fn func()) {
	prev := Parallelism()
	SetParallelism(n)
	defer SetParallelism(prev)
	fn()
}

// kernelShapes are deliberately awkward: degenerate rows/columns, prime
// dimensions that never divide evenly across workers, and sizes straddling
// the serial/parallel work threshold.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 97, 1},
	{1, 7, 64},   // 1×N row vector result
	{64, 7, 1},   // N×1 column vector result
	{3, 5, 7},    // tiny, below threshold → serial even when parallel is on
	{17, 13, 19}, // prime dims, still below threshold
	{31, 37, 29}, // just below the 2·m·k·n ≥ 2^16 threshold
	{32, 32, 32}, // right at the threshold boundary
	{61, 53, 67}, // prime dims above the threshold
	{128, 64, 96},
}

func TestParallelKernelsBitIdenticalToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, s := range kernelShapes {
		a := Randn(rng, 1, s.m, s.k)
		b := Randn(rng, 1, s.k, s.n)
		aT := Randn(rng, 1, s.k, s.m)
		bT := Randn(rng, 1, s.n, s.k)
		// Sprinkle exact zeros so the skip-zero fast path is exercised.
		for i := 0; i < len(a.Data); i += 3 {
			a.Data[i] = 0
		}
		var serial, parallel [3]*Tensor
		withParallelism(1, func() {
			serial[0] = MatMul(a, b)
			serial[1] = MatMulAT(aT, b)
			serial[2] = MatMulBT(a, bT)
		})
		for _, procs := range []int{2, 3, 8} {
			withParallelism(procs, func() {
				parallel[0] = MatMul(a, b)
				parallel[1] = MatMulAT(aT, b)
				parallel[2] = MatMulBT(a, bT)
			})
			for i, name := range []string{"MatMul", "MatMulAT", "MatMulBT"} {
				if !Equal(serial[i], parallel[i]) {
					t.Fatalf("%s %dx%dx%d: parallel(%d) result not bit-identical to serial",
						name, s.m, s.k, s.n, procs)
				}
			}
		}
	}
}

func TestMatMulIntoMatchesAllocatingKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Randn(rng, 1, 23, 31)
	b := Randn(rng, 1, 31, 17)
	aT := Randn(rng, 1, 31, 23)
	bT := Randn(rng, 1, 17, 31)
	// Stale destination contents must be fully overwritten.
	dst := New(23, 17)
	dst.Fill(math.NaN())
	if got := MatMulInto(dst, a, b); !Equal(got, MatMul(a, b)) {
		t.Fatal("MatMulInto differs from MatMul")
	}
	dst.Fill(math.NaN())
	if got := MatMulATInto(dst, aT, b); !Equal(got, MatMulAT(aT, b)) {
		t.Fatal("MatMulATInto differs from MatMulAT")
	}
	dst.Fill(math.NaN())
	if got := MatMulBTInto(dst, a, bT); !Equal(got, MatMulBT(a, bT)) {
		t.Fatal("MatMulBTInto differs from MatMulBT")
	}
	if dst.Rows() != 23 || dst.Cols() != 17 {
		t.Fatalf("Into kernel left dst shape %v", dst.Shape)
	}
}

func TestMatMulIntoRejectsWrongDstSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulInto with a wrong-sized dst must panic")
		}
	}()
	MatMulInto(New(2, 2), New(3, 4), New(4, 5))
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	withParallelism(4, func() {
		for _, n := range []int{0, 1, 3, 4, 5, 97} {
			var mu sync.Mutex
			seen := make([]int, n)
			// Force the parallel path with a huge work estimate.
			ParallelFor(n, 1<<30, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d: index %d covered %d times", n, i, c)
				}
			}
		}
	})
}

func TestSetParallelismClampsToOne(t *testing.T) {
	withParallelism(1, func() {
		SetParallelism(-3)
		if Parallelism() != 1 {
			t.Fatalf("Parallelism() = %d after SetParallelism(-3), want 1", Parallelism())
		}
	})
}

func TestBufferPoolRoundTrip(t *testing.T) {
	b1 := GetBufUninit(4, 5)
	b1.Fill(3)
	PutBuf(b1)
	b2 := GetBuf(2, 10) // same element count, different shape, zeroed
	if b2.Rows() != 2 || b2.Cols() != 10 {
		t.Fatalf("GetBuf shape %v, want [2 10]", b2.Shape)
	}
	for i, v := range b2.Data {
		if v != 0 {
			t.Fatalf("GetBuf element %d = %v, want 0 (stale pooled data leaked)", i, v)
		}
	}
	PutBuf(b2)
	PutBuf(nil) // must not panic
}

func TestRowViewSharesStorage(t *testing.T) {
	a := New(3, 4)
	row := a.RowView(1)
	if len(row) != 4 {
		t.Fatalf("RowView length %d, want 4", len(row))
	}
	row[2] = 9
	if a.At(1, 2) != 9 {
		t.Fatal("RowView must alias the tensor's storage")
	}
}

// ---------------------------------------------------------------- AlmostEqual

func TestAlmostEqualShapeCheck(t *testing.T) {
	a := New(2, 3)
	b := New(3, 2) // same element count, different shape
	if AlmostEqual(a, b, 1e-9) {
		t.Fatal("tensors with different shapes must not be almost-equal")
	}
	c := New(6)
	if AlmostEqual(a, c, 1e-9) {
		t.Fatal("tensors with different ranks must not be almost-equal")
	}
	if !AlmostEqual(a, New(2, 3), 0) {
		t.Fatal("identical zero tensors must be almost-equal")
	}
}

func TestAlmostEqualNaN(t *testing.T) {
	a := New(2)
	b := New(2)
	a.Data[1] = math.NaN()
	b.Data[1] = math.NaN()
	if AlmostEqual(a, b, 1e-9) {
		t.Fatal("NaN must not compare as almost-equal to NaN")
	}
	b.Data[1] = 0
	if AlmostEqual(a, b, math.Inf(1)) {
		t.Fatal("NaN vs finite must not be almost-equal even with infinite tolerance")
	}
	if AlmostEqual(b, a, math.Inf(1)) {
		t.Fatal("finite vs NaN must not be almost-equal either")
	}
}
