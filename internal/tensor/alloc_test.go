package tensor

import (
	"math/rand"
	"testing"
)

// MatMul's steady-state allocation budget, pinned so it cannot silently
// creep. The breakdown on the serial path (the one benchmarks exercise on
// small hosts, where GOMAXPROCS < 2 forces every kernel inline):
//
//   - New(m, n): 4 allocations — the Tensor struct, the copied Shape slice,
//     the Data backing array, and the variadic shape argument.
//   - The ParallelFor body closure: 1 allocation. The closure captures the
//     operand tensors and MAY be handed to pool workers, so escape analysis
//     heap-allocates it at the call site even when the serial branch runs.
//     This is the +1 over the pre-pool kernels (BENCH seed: 4 allocs/op,
//     now 5): a fixed 24-byte cost per kernel call — not per element — that
//     buys the zero-copy hand-off to the worker pool. Eliminating it would
//     mean duplicating every kernel body into serial and parallel variants.
//
// The parallel path adds O(Parallelism) more (one wrapper closure per
// submitted block plus the WaitGroup), still independent of matrix size.
const (
	matMulSerialAllocs   = 5
	matMulParallelExtras = 16 // generous bound for blocks + sync at p=8
)

func TestMatMulAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 64, 64)
	y := Randn(rng, 1, 64, 64)
	defer requestedParallelism.Store(0) // back to the GOMAXPROCS default

	SetParallelism(1)
	if got := testing.AllocsPerRun(100, func() { MatMul(x, y) }); got > matMulSerialAllocs {
		t.Errorf("serial MatMul allocates %.0f/op, budget %d — the kernel hot path regressed", got, matMulSerialAllocs)
	}
	SetParallelism(8)
	if got := testing.AllocsPerRun(100, func() { MatMul(x, y) }); got > matMulSerialAllocs+matMulParallelExtras {
		t.Errorf("parallel MatMul allocates %.0f/op, budget %d", got, matMulSerialAllocs+matMulParallelExtras)
	}
}

// TestMatMulIntoAllocFree pins the Into-variant: with a caller-provided
// destination the serial kernel performs zero allocations beyond the
// dispatch closure.
func TestMatMulIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 64, 64)
	y := Randn(rng, 1, 64, 64)
	dst := New(64, 64)
	SetParallelism(1)
	defer requestedParallelism.Store(0)
	if got := testing.AllocsPerRun(100, func() { MatMulInto(dst, x, y) }); got > 1 {
		t.Errorf("serial MatMulInto allocates %.0f/op, want ≤1 (the dispatch closure)", got)
	}
}
