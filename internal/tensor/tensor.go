// Package tensor provides a minimal dense float64 tensor used by the Eco-FL
// neural-network substrate. Tensors are row-major and intentionally simple:
// the federated-learning simulation trains small models where clarity and
// determinism matter more than raw FLOP throughput.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major float64 array with an explicit shape.
// The zero value is an empty tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Randn returns a tensor with entries drawn i.i.d. from N(0, std²) using rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Rows returns the size of the leading dimension (1 for scalars).
func (t *Tensor) Rows() int {
	if len(t.Shape) == 0 {
		return 1
	}
	return t.Shape[0]
}

// Cols returns the product of all dimensions after the first.
func (t *Tensor) Cols() int {
	if len(t.Shape) == 0 {
		return 1
	}
	c := 1
	for _, d := range t.Shape[1:] {
		c *= d
	}
	return c
}

// At returns the element at a 2-D index (row-major).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols()+j] }

// Set assigns the element at a 2-D index.
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols()+j] = v }

// RowView returns row i of the tensor (viewed 2-D) as a slice sharing t's
// storage. Prefer it over At/Set in per-element loops: it hoists the Cols()
// stride computation out of the loop and indexes the row directly.
func (t *Tensor) RowView(i int) []float64 {
	c := t.Cols()
	return t.Data[i*c : (i+1)*c]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	copy(t.Data, src.Data)
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Scale multiplies every element by a in place and returns t.
func (t *Tensor) Scale(a float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= a
	}
	return t
}

// AddScaled adds a*src to t element-wise in place (axpy) and returns t.
func (t *Tensor) AddScaled(a float64, src *Tensor) *Tensor {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: AddScaled size mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	for i, v := range src.Data {
		t.Data[i] += a * v
	}
	return t
}

// Add adds src to t element-wise in place and returns t.
func (t *Tensor) Add(src *Tensor) *Tensor { return t.AddScaled(1, src) }

// Sub subtracts src from t element-wise in place and returns t.
func (t *Tensor) Sub(src *Tensor) *Tensor { return t.AddScaled(-1, src) }

// Hadamard multiplies t by src element-wise in place and returns t.
func (t *Tensor) Hadamard(src *Tensor) *Tensor {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: Hadamard size mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	for i, v := range src.Data {
		t.Data[i] *= v
	}
	return t
}

// Dot returns the inner product of t and src viewed as flat vectors.
func (t *Tensor) Dot(src *Tensor) float64 {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	var s float64
	for i, v := range src.Data {
		s += t.Data[i] * v
	}
	return s
}

// Norm2 returns the squared Euclidean norm of t viewed as a flat vector.
func (t *Tensor) Norm2() float64 { return t.Dot(t) }

// setShape2D points dst at an (m, n) view, reusing its Shape slice when
// possible so reshaping a pooled buffer does not allocate.
func setShape2D(dst *Tensor, m, n int) {
	dst.Shape = append(dst.Shape[:0], m, n)
}

// MatMulInto computes a×b for 2-D tensors (m×k)·(k×n) → (m×n), overwriting
// dst (which must hold exactly m·n elements and not alias a or b) and
// returning it. Output rows are split across the package worker pool when
// the operation is large enough; each worker owns disjoint rows and
// accumulates every element in the same order as the serial kernel, so the
// result is bit-identical at any parallelism.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k, n := a.Rows(), a.Cols(), b.Cols()
	if b.Rows() != k {
		panic(fmt.Sprintf("tensor: MatMul inner mismatch %v × %v", a.Shape, b.Shape))
	}
	if len(dst.Data) != m*n {
		panic(fmt.Sprintf("tensor: MatMulInto dst has %d elements, want %d", len(dst.Data), m*n))
	}
	setShape2D(dst, m, n)
	ParallelFor(m, 2*m*k*n, func(lo, hi int) {
		// ikj loop order keeps the inner loop streaming over contiguous
		// memory.
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			oi := dst.Data[i*n : (i+1)*n]
			for j := range oi {
				oi[j] = 0
			}
			for kk, av := range ai {
				if av == 0 {
					continue
				}
				bk := b.Data[kk*n : (kk+1)*n]
				for j, bv := range bk {
					oi[j] += av * bv
				}
			}
		}
	})
	return dst
}

// MatMul returns a×b for 2-D tensors (m×k)·(k×n) → (m×n).
func MatMul(a, b *Tensor) *Tensor {
	return MatMulInto(New(a.Rows(), b.Cols()), a, b)
}

// MatMulATInto computes aᵀ×b for 2-D tensors (k×m)ᵀ·(k×n) → (m×n) into dst
// (m·n elements, no aliasing), returning dst. Parallel over output rows;
// bit-identical to the serial kernel (see MatMulInto).
func MatMulATInto(dst, a, b *Tensor) *Tensor {
	k, m, n := a.Rows(), a.Cols(), b.Cols()
	if b.Rows() != k {
		panic(fmt.Sprintf("tensor: MatMulAT inner mismatch %v × %v", a.Shape, b.Shape))
	}
	if len(dst.Data) != m*n {
		panic(fmt.Sprintf("tensor: MatMulATInto dst has %d elements, want %d", len(dst.Data), m*n))
	}
	setShape2D(dst, m, n)
	ParallelFor(m, 2*m*k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			oi := dst.Data[i*n : (i+1)*n]
			for j := range oi {
				oi[j] = 0
			}
		}
		// kk stays the outer loop so both operands stream row-wise; each
		// output element still accumulates in ascending-kk order.
		for kk := 0; kk < k; kk++ {
			ak := a.Data[kk*m : (kk+1)*m]
			bk := b.Data[kk*n : (kk+1)*n]
			for i := lo; i < hi; i++ {
				av := ak[i]
				if av == 0 {
					continue
				}
				oi := dst.Data[i*n : (i+1)*n]
				for j, bv := range bk {
					oi[j] += av * bv
				}
			}
		}
	})
	return dst
}

// MatMulAT returns aᵀ×b for 2-D tensors (k×m)ᵀ·(k×n) → (m×n).
func MatMulAT(a, b *Tensor) *Tensor {
	return MatMulATInto(New(a.Cols(), b.Cols()), a, b)
}

// MatMulBTInto computes a×bᵀ for 2-D tensors (m×k)·(n×k)ᵀ → (m×n) into dst
// (m·n elements, no aliasing), returning dst. Parallel over output rows;
// bit-identical to the serial kernel (see MatMulInto).
func MatMulBTInto(dst, a, b *Tensor) *Tensor {
	m, k, n := a.Rows(), a.Cols(), b.Rows()
	if b.Cols() != k {
		panic(fmt.Sprintf("tensor: MatMulBT inner mismatch %v × %v", a.Shape, b.Shape))
	}
	if len(dst.Data) != m*n {
		panic(fmt.Sprintf("tensor: MatMulBTInto dst has %d elements, want %d", len(dst.Data), m*n))
	}
	setShape2D(dst, m, n)
	ParallelFor(m, 2*m*k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			oi := dst.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.Data[j*k : (j+1)*k]
				var s float64
				for kk, av := range ai {
					s += av * bj[kk]
				}
				oi[j] = s
			}
		}
	})
	return dst
}

// MatMulBT returns a×bᵀ for 2-D tensors (m×k)·(n×k)ᵀ → (m×n).
func MatMulBT(a, b *Tensor) *Tensor {
	return MatMulBTInto(New(a.Rows(), b.Rows()), a, b)
}

// ArgmaxRow returns the index of the maximum element in row i.
func (t *Tensor) ArgmaxRow(i int) int {
	row := t.RowView(i)
	best, bv := 0, math.Inf(-1)
	for j, v := range row {
		if v > bv {
			best, bv = j, v
		}
	}
	return best
}

// Equal reports whether two tensors have identical shape and identical data.
func Equal(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether two tensors have equal shape and element-wise
// absolute difference at most tol. Any NaN element (in either tensor) makes
// the comparison fail: NaN is never almost-equal to anything, including NaN.
func AlmostEqual(a, b *Tensor, tol float64) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > tol || math.IsNaN(d) {
			return false
		}
	}
	return true
}
