#!/usr/bin/env bash
# Runs the tensor/nn/fl/obs benchmarks and writes BENCH_pr2.json mapping each
# benchmark to ns/op and allocs/op, alongside the seed baseline and the PR1
# numbers captured on the same host. The obs benchmarks compare an
# uninstrumented TrainBatch hot loop (BenchmarkTrainBatchBare) against the
# same loop through a nil *obs.Trace (BenchmarkTrainBatchNopRecorder): their
# ns/op should be statistically indistinguishable, proving the disabled
# recorder costs ~0.
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_pr2.json}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchmem -benchtime 200ms \
	./internal/tensor/... ./internal/nn/... ./internal/fl/... \
	./internal/obs/... | tee "$raw"

awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns[name] = $3
	allocs[name] = $7
	order[n++] = name
}
END {
	printf "{\n"
	printf "  \"generated_by\": \"scripts/bench.sh\",\n"
	printf "  \"units\": {\"ns_op\": \"ns/op\", \"allocs_op\": \"allocs/op\"},\n"
	printf "  \"notes\": \"MatMul* allocs_op is 5 vs seed 4: +1 fixed heap closure for the worker-pool dispatch (documented in internal/tensor/alloc_test.go, guarded there). Compare BenchmarkTrainBatchBare vs BenchmarkTrainBatchNopRecorder for the nop-recorder overhead.\",\n"
	printf "  \"baseline_seed\": {\n"
	printf "    \"BenchmarkMatMul64\": {\"ns_op\": 181628, \"allocs_op\": 4},\n"
	printf "    \"BenchmarkMatMulAT64\": {\"ns_op\": 142610, \"allocs_op\": 4},\n"
	printf "    \"BenchmarkMatMulBT64\": {\"ns_op\": 128890, \"allocs_op\": 4},\n"
	printf "    \"BenchmarkTrainBatchMLP\": {\"ns_op\": 265842, \"allocs_op\": 55},\n"
	printf "    \"BenchmarkConv2DForward\": {\"ns_op\": 1314464, \"allocs_op\": 13},\n"
	printf "    \"BenchmarkConv2DBackward\": {\"ns_op\": 1709398, \"allocs_op\": 16},\n"
	printf "    \"BenchmarkLocalTrain\": {\"ns_op\": 865325, \"allocs_op\": 502}\n"
	printf "  },\n"
	printf "  \"baseline_pr1\": {\n"
	printf "    \"BenchmarkMatMul64\": {\"ns_op\": 153070, \"allocs_op\": 5},\n"
	printf "    \"BenchmarkMatMulAT64\": {\"ns_op\": 153058, \"allocs_op\": 5},\n"
	printf "    \"BenchmarkMatMulBT64\": {\"ns_op\": 108739, \"allocs_op\": 5},\n"
	printf "    \"BenchmarkTrainBatchMLP\": {\"ns_op\": 325803, \"allocs_op\": 37},\n"
	printf "    \"BenchmarkConv2DForward\": {\"ns_op\": 1032506, \"allocs_op\": 11},\n"
	printf "    \"BenchmarkConv2DBackward\": {\"ns_op\": 1696018, \"allocs_op\": 3},\n"
	printf "    \"BenchmarkLocalTrain\": {\"ns_op\": 802769, \"allocs_op\": 361}\n"
	printf "  },\n"
	printf "  \"current\": {\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    \"%s\": {\"ns_op\": %s, \"allocs_op\": %s}%s\n", \
			name, ns[name], allocs[name], (i < n - 1 ? "," : "")
	}
	printf "  }\n"
	printf "}\n"
}' "$raw" >"$out"

echo "wrote $out"
