#!/usr/bin/env bash
# Runs the tensor/nn/fl/obs/metrics/flnet/pipeline-runtime benchmarks and
# writes BENCH_pr6.json mapping each benchmark to ns/op and allocs/op —
# plus pushes/s and bytes/round where a benchmark reports them — alongside
# the seed baseline and the PR1 numbers captured on the same host
# (BENCH_pr1.json..BENCH_pr5.json in the repo root hold earlier captures).
#
# Wire transport gains are read off BenchmarkServerIngest: gob-raw is the
# legacy reflection-encoded baseline; binary-raw/-quant/-sparse-1k are the
# framed codecs on the same 100k-weight model. The acceptance bar is
# binary-sparse-1k at >=2x gob-raw pushes/s and >=4x fewer bytes/round.
#
# Self-healing hardening overhead is read off one comparison:
#   - BenchmarkDistRound/bare vs BenchmarkDistRound/hardened: a fault-free
#     distributed sync-round with zero LinkOptions vs full send/recv
#     deadlines + heartbeats + dial retries. The budget is <2% steady-state.
#
# Telemetry overhead is read off two comparisons:
#   - BenchmarkPushRaw vs BenchmarkPushRawWithTelemetry: the true piggyback
#     cost per push (snapshot build + extra gob payload) — small next to a
#     100k-weight payload.
#   - BenchmarkSamplerSample / BenchmarkSeriesAppend: the periodic history
#     cost on the server — a sample every 2 s over a fleet-sized registry,
#     nothing on any hot path. The idle path (telemetry disabled) costs one
#     nil check per roundTrip, i.e. ~0, like the nil *obs.Trace recorder
#     (BenchmarkTrainBatchBare vs BenchmarkTrainBatchNopRecorder).
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_pr6.json}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchmem -benchtime 200ms \
	./internal/tensor/... ./internal/nn/... ./internal/fl/... \
	./internal/obs/... ./internal/metrics/... ./internal/flnet/... \
	./internal/pipeline/runtime/... | tee "$raw"

awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	# Benchmarks using b.SetBytes add an MB/s column and BenchmarkServerIngest
	# reports pushes/s + bytes/round via ReportMetric, so locate values by
	# their unit field instead of a fixed position.
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns[name] = $i
		if ($(i + 1) == "allocs/op") allocs[name] = $i
		if ($(i + 1) == "pushes/s") pushes[name] = $i
		if ($(i + 1) == "bytes/round") bytes[name] = $i
	}
	order[n++] = name
}
END {
	printf "{\n"
	printf "  \"generated_by\": \"scripts/bench.sh\",\n"
	printf "  \"units\": {\"ns_op\": \"ns/op\", \"allocs_op\": \"allocs/op\", \"pushes_s\": \"pushes/s\", \"bytes_round\": \"server uplink bytes per push\"},\n"
	printf "  \"notes\": \"Wire transport: compare BenchmarkServerIngest/gob-raw (legacy baseline) against binary-raw/-quant/-sparse-1k on the same 100k-weight model; acceptance is binary-sparse-1k at >=2x gob-raw pushes/s and >=4x fewer bytes/round. Self-healing hardening overhead: compare BenchmarkDistRound/bare vs BenchmarkDistRound/hardened (budget <2%% steady-state). Telemetry overhead: compare BenchmarkPushRaw vs BenchmarkPushRawWithTelemetry and see BenchmarkSamplerSample. Full earlier captures live in BENCH_pr1.json..BENCH_pr5.json.\",\n"
	printf "  \"baseline_seed\": {\n"
	printf "    \"BenchmarkMatMul64\": {\"ns_op\": 181628, \"allocs_op\": 4},\n"
	printf "    \"BenchmarkMatMulAT64\": {\"ns_op\": 142610, \"allocs_op\": 4},\n"
	printf "    \"BenchmarkMatMulBT64\": {\"ns_op\": 128890, \"allocs_op\": 4},\n"
	printf "    \"BenchmarkTrainBatchMLP\": {\"ns_op\": 265842, \"allocs_op\": 55},\n"
	printf "    \"BenchmarkConv2DForward\": {\"ns_op\": 1314464, \"allocs_op\": 13},\n"
	printf "    \"BenchmarkConv2DBackward\": {\"ns_op\": 1709398, \"allocs_op\": 16},\n"
	printf "    \"BenchmarkLocalTrain\": {\"ns_op\": 865325, \"allocs_op\": 502}\n"
	printf "  },\n"
	printf "  \"baseline_pr1\": {\n"
	printf "    \"BenchmarkMatMul64\": {\"ns_op\": 153070, \"allocs_op\": 5},\n"
	printf "    \"BenchmarkMatMulAT64\": {\"ns_op\": 153058, \"allocs_op\": 5},\n"
	printf "    \"BenchmarkMatMulBT64\": {\"ns_op\": 108739, \"allocs_op\": 5},\n"
	printf "    \"BenchmarkTrainBatchMLP\": {\"ns_op\": 325803, \"allocs_op\": 37},\n"
	printf "    \"BenchmarkConv2DForward\": {\"ns_op\": 1032506, \"allocs_op\": 11},\n"
	printf "    \"BenchmarkConv2DBackward\": {\"ns_op\": 1696018, \"allocs_op\": 3},\n"
	printf "    \"BenchmarkLocalTrain\": {\"ns_op\": 802769, \"allocs_op\": 361}\n"
	printf "  },\n"
	printf "  \"current\": {\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		extra = ""
		if (name in pushes) extra = extra ", \"pushes_s\": " pushes[name]
		if (name in bytes) extra = extra ", \"bytes_round\": " bytes[name]
		printf "    \"%s\": {\"ns_op\": %s, \"allocs_op\": %s%s}%s\n", \
			name, ns[name], allocs[name], extra, (i < n - 1 ? "," : "")
	}
	printf "  }\n"
	printf "}\n"
}' "$raw" >"$out"

echo "wrote $out"
