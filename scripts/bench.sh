#!/usr/bin/env bash
# Thin wrapper over the scenario harness: runs the example scenarios through
# `ecofl bench` and writes BENCH_pr10.json in the ecofl/bench-suite/v1 schema
# (accuracy curve, round-time p50/p95, bytes/push per wire codec, goroutine
# HWM, peak heap, GC pause tail — per scenario).
#
# Usage:
#   scripts/bench.sh [out.json] [baseline.json]
#
# With a baseline, the run becomes a regression gate: metrics drifting past
# tolerance exit non-zero with a verdict table. Earlier captures
# (BENCH_pr1.json..BENCH_pr6.json, the go-bench ns/op schema) still load as
# baselines; their metrics are reported missing-with-warning, never failures.
#
# smoke-journal is smoke with the flight recorder on: its round-time metrics
# double as a live check that journaling stays at the noise floor, and its
# journal_events_total proves the recorder actually captured the run.
#
# Provenance (git SHA, capture time) is passed in explicitly — the harness
# never reads them ambiently, so a re-run of this script is the only thing
# that stamps a new identity on the artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_pr10.json}
baseline=${2:-}

compare=()
if [ -n "$baseline" ]; then
	compare=(--compare "$baseline" --tolerance 10%)
fi

go run ./cmd/ecofl bench \
	--scenario examples/scenarios/smoke.json \
	--scenario examples/scenarios/smoke-journal.json \
	--scenario examples/scenarios/clean.json \
	--scenario examples/scenarios/sparse.json \
	--scenario examples/scenarios/dropout30.json \
	--scenario examples/scenarios/churn50.json \
	--scenario examples/scenarios/byzantine30.json \
	--scenario examples/scenarios/failover.json \
	--git-sha "$(git rev-parse --short HEAD)" \
	--now "$(date +%s)" \
	--out "$out" \
	"${compare[@]}"

echo "wrote $out"
