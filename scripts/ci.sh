#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, tests, plus the race-detector pass
# for the concurrent packages.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...
# -short keeps the race pass fast: the flnet chaos soak (fault-injected
# links, server bounces) runs its reduced-round configuration here, having
# already run in full above.
go test -race -short ./internal/tensor/... ./internal/fl/... \
	./internal/metrics/... ./internal/obs/... ./internal/adaptive/... \
	./internal/flnet/... ./internal/simnet/... ./internal/pipeline/runtime/...
