#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, tests, plus the race-detector pass
# for the concurrent packages.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./internal/tensor/... ./internal/fl/... \
	./internal/metrics/... ./internal/obs/... ./internal/adaptive/... \
	./internal/flnet/... ./internal/pipeline/runtime/...
