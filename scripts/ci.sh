#!/usr/bin/env bash
# Tier-1 gate: formatting, vet, build, tests, plus the race-detector pass
# for the concurrent packages.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...
# -short keeps the race pass fast: the flnet chaos soak (fault-injected
# links, server bounces) and the pipeline chaos soak (executor TestChaosSoak:
# every simnet fault mode plus a killed device, under ./internal/adaptive/...)
# run their reduced-round configurations here, having already run in full
# above. ./internal/adaptive/... covers the self-healing executor package;
# ./internal/pipeline/runtime/... covers the hardened link layer;
# ./internal/flnet/... recursively covers ./internal/flnet/wire/... (binary
# frame codecs) alongside the mixed-wire interop and codec chaos soaks.
go test -race -short ./internal/tensor/... ./internal/fl/... \
	./internal/fl/robust/... \
	./internal/metrics/... ./internal/obs/... ./internal/adaptive/... \
	./internal/flnet/... ./internal/simnet/... ./internal/device/... \
	./internal/scenario/... ./internal/pipeline/runtime/...

# Scenario-harness smoke: one tiny loopback federation through the real
# transport, end to end — spec loading, the runner, report emission. Finishes
# in well under a second; catches wiring breaks the unit tests can't.
go run ./cmd/ecofl bench --scenario examples/scenarios/smoke.json \
	--out /tmp/ecofl_ci_smoke.json >/dev/null
rm -f /tmp/ecofl_ci_smoke.json
echo "scenario smoke: ok"

# Churn smoke: the 50% diurnal-churn soak through the declarative harness —
# availability traces, mid-round departures, re-admission and quorum cuts,
# with the flight recorder on. Proves the membership machinery end to end.
go run ./cmd/ecofl bench --scenario examples/scenarios/churn50.json \
	--out /tmp/ecofl_ci_churn.json >/dev/null
rm -f /tmp/ecofl_ci_churn.json
echo "churn smoke: ok"

# Byzantine smoke: 30% sign-flip adversaries against the median in-group
# mixer through the declarative harness — seeded corruption, robust
# aggregation, and the attack metrics, end to end.
go run ./cmd/ecofl bench --scenario examples/scenarios/byzantine30.json \
	--out /tmp/ecofl_ci_byz.json >/dev/null
rm -f /tmp/ecofl_ci_byz.json
echo "byzantine smoke: ok"
